"""User-defined function wrappers for real-data execution.

Operators carry an ``fn`` mapping ``{parent_name: records}`` to output
records. The classes here adapt common patterns (map, flat-map, filter,
keyed reduction, global combination, side inputs) to that signature, in the
spirit of Beam's ``ParDo`` and ``Combine`` transforms (§4 of the paper).

:class:`CombineFn` is the contract the runtime's partial-aggregation
optimization relies on (§3.2.7): the combine logic must be commutative and
associative so that outputs can be merged on transient executors and on
reserved executors on the fly, and ``merged_size_bytes`` tells the simulator
how partial aggregation shrinks transfer sizes (e.g. summing gradient vectors
keeps the size constant instead of growing linearly).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import DagError


def single_parent_records(inputs: dict[str, list]) -> list:
    """Flatten the inputs of an operator expected to have one parent."""
    if len(inputs) != 1:
        raise DagError(
            f"expected exactly one parent, got {sorted(inputs)!r}")
    return next(iter(inputs.values()))


class MapFn:
    """Apply ``f`` to every input record (Beam ``ParDo`` with 1:1 output)."""

    def __init__(self, f: Callable[[Any], Any]) -> None:
        self._f = f

    def __call__(self, inputs: dict[str, list]) -> list:
        return [self._f(record) for record in single_parent_records(inputs)]


class FlatMapFn:
    """Apply ``f`` to every record and concatenate the iterables it returns."""

    def __init__(self, f: Callable[[Any], Iterable[Any]]) -> None:
        self._f = f

    def __call__(self, inputs: dict[str, list]) -> list:
        out: list[Any] = []
        for record in single_parent_records(inputs):
            out.extend(self._f(record))
        return out


class FilterFn:
    """Keep the records for which ``predicate`` is true."""

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self._predicate = predicate

    def __call__(self, inputs: dict[str, list]) -> list:
        return [r for r in single_parent_records(inputs) if self._predicate(r)]


class MapWithSideFn:
    """Apply ``f(record, side_value)`` where the side input is the broadcast
    (one-to-many) parent — e.g. the latest model in MLR (§3.2.7)."""

    def __init__(self, f: Callable[[Any, Any], Any], side: str) -> None:
        self._f = f
        self.side = side

    def __call__(self, inputs: dict[str, list]) -> list:
        if self.side not in inputs:
            raise DagError(f"missing side input {self.side!r}")
        side_records = inputs[self.side]
        if len(side_records) != 1:
            raise DagError(
                f"side input {self.side!r} must be a single record, got "
                f"{len(side_records)}")
        side_value = side_records[0]
        mains = [recs for name, recs in inputs.items() if name != self.side]
        if len(mains) != 1:
            raise DagError("expected exactly one main input")
        return [self._f(record, side_value) for record in mains[0]]


class CombineFn:
    """Commutative, associative combination — the paper's requirement for
    task-output partial aggregation (§3.2.7).

    Subclasses (or instances built via :func:`binary_combiner`) must satisfy
    ``merge(merge(a, b), c) == merge(a, merge(b, c))`` and
    ``merge(a, b) == merge(b, a)`` up to the semantics of the payload.
    """

    def create(self) -> Any:
        """Return the identity accumulator."""
        raise NotImplementedError

    def add(self, accumulator: Any, value: Any) -> Any:
        """Fold one input value into the accumulator."""
        return self.merge(accumulator, value)

    def merge(self, left: Any, right: Any) -> Any:
        """Merge two accumulators."""
        raise NotImplementedError

    def extract(self, accumulator: Any) -> Any:
        """Produce the final output value from an accumulator."""
        return accumulator

    def merged_size_bytes(self, sizes: Sequence[float]) -> float:
        """Simulated size of ``merge``-ing payloads of the given sizes.

        The default (max) models fixed-width accumulators such as gradient
        vectors: merging never grows the payload. Concatenation-like
        combiners should override this with ``sum``.
        """
        return max(sizes) if sizes else 0.0


class _BinaryCombiner(CombineFn):
    def __init__(self, merge_fn: Callable[[Any, Any], Any], identity: Any,
                 size_mode: str) -> None:
        self._merge = merge_fn
        self._identity = identity
        if size_mode not in ("max", "sum"):
            raise ValueError("size_mode must be 'max' or 'sum'")
        self._size_mode = size_mode

    def create(self) -> Any:
        return self._identity

    def merge(self, left: Any, right: Any) -> Any:
        return self._merge(left, right)

    def merged_size_bytes(self, sizes: Sequence[float]) -> float:
        if not sizes:
            return 0.0
        return max(sizes) if self._size_mode == "max" else sum(sizes)


def binary_combiner(merge_fn: Callable[[Any, Any], Any], identity: Any,
                    size_mode: str = "max") -> CombineFn:
    """Build a :class:`CombineFn` from a binary merge function."""
    return _BinaryCombiner(merge_fn, identity, size_mode)


class SumCombiner(CombineFn):
    """Numeric sum (the canonical commutative/associative combiner)."""

    def create(self) -> Any:
        return 0

    def merge(self, left: Any, right: Any) -> Any:
        return left + right


class KeyedReduceFn:
    """Group ``(key, value)`` records by key and reduce each group.

    Used as the operator function of shuffle consumers (Reduce in MR). The
    output is a sorted list of ``(key, reduced_value)`` so results are
    deterministic regardless of arrival order — important because engines
    deliver shuffled partitions in different orders under evictions.
    """

    def __init__(self, combiner: CombineFn) -> None:
        self.combiner = combiner

    def __call__(self, inputs: dict[str, list]) -> list:
        groups: dict[Any, Any] = {}
        for records in inputs.values():
            for key, value in records:
                if key in groups:
                    groups[key] = self.combiner.add(groups[key], value)
                else:
                    groups[key] = self.combiner.add(self.combiner.create(),
                                                    value)
        return sorted(groups.items(), key=lambda kv: repr(kv[0]))


class GlobalCombineFn:
    """Merge all input values into one accumulator (tree aggregation step).

    The inputs may be raw values or partial accumulators from upstream
    partial aggregation — indistinguishable by design, since the combine
    logic is associative.
    """

    def __init__(self, combiner: CombineFn) -> None:
        self.combiner = combiner

    def __call__(self, inputs: dict[str, list]) -> list:
        acc = self.combiner.create()
        for records in inputs.values():
            for value in records:
                acc = self.combiner.merge(acc, value)
        return [self.combiner.extract(acc)]


class RawFn:
    """Escape hatch: run an arbitrary callable over the full input dict."""

    def __init__(self, f: Callable[[dict[str, list]], list]) -> None:
        self._f = f

    def __call__(self, inputs: dict[str, list]) -> list:
        return self._f(inputs)
