"""Data processing engines compared in the paper (§5.1.2): the shared
engine substrate plus the Spark and Spark-checkpoint baselines. The Pado
engine itself lives in :mod:`repro.core.runtime`."""

from repro.engines.base import (ClusterConfig, EngineBase, JobResult,
                                Program, SimContext, SimExecutor)
from repro.engines.spark import SparkEngine, SparkMaster
from repro.engines.spark_checkpoint import (CheckpointMaster,
                                            SparkCheckpointEngine)

__all__ = [
    "CheckpointMaster", "ClusterConfig", "EngineBase", "JobResult",
    "Program", "SimContext", "SimExecutor", "SparkCheckpointEngine",
    "SparkEngine", "SparkMaster",
]
