"""Spark-checkpoint: Flint-style checkpointing at shuffle boundaries (§5.1.2).

The paper's modified Spark checkpoints compressed map outputs to a
non-replicated GlusterFS cluster running on the reserved containers:

* executors run only on transient containers; the reserved containers serve
  as stable storage;
* every task output crossed by a shuffle (wide) edge is checkpointed
  asynchronously, on a separate thread, as soon as it is produced;
* shuffle consumers pull their data from the stable store — this removes
  cascading recomputation, but funnels all shuffle traffic through the few
  storage nodes' bandwidth (the degradation measured in §5.2.1 and Fig. 8);
* an eviction only loses outputs whose checkpoint had not finished; those
  tasks are recomputed, everything else restores from the store.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.network import TransferResult
from repro.cluster.storage import StableStore
from repro.dataflow.dag import Edge
from repro.core.exec import OutputRecord
from repro.engines.base import ClusterConfig, Program, SimContext
from repro.engines.spark import (SparkEngine, SparkMaster, _SparkTask,
                                 transfer_share)


class CheckpointMaster(SparkMaster):
    """Spark master extended with a stable store and checkpoint tracking."""

    def __init__(self, ctx: SimContext, program: Program,
                 engine: "SparkCheckpointEngine") -> None:
        super().__init__(ctx, program, engine)
        server_bw = min(ctx.cluster.reserved_spec.network_bandwidth,
                        ctx.cluster.reserved_spec.disk_bandwidth)
        server_bw *= engine.store_bandwidth_factor
        self.stable_store = StableStore(ctx.sim, ctx.net,
                                        num_servers=ctx.cluster.num_reserved,
                                        server_bandwidth=server_bw)
        self.ckpt_waiters: dict[tuple, list[Callable[[], None]]] = {}
        # Chains whose outputs feed a shuffle get checkpointed.
        self._wide_producers = set()
        for chain in self.chains:
            for edge in chain.external_in_edges():
                if edge.dep_type.is_wide:
                    producer = self._chain_of_op[edge.src.name]
                    self._wide_producers.add(producer.name)

    def notify_checkpoint_done(self, pkey: tuple) -> None:
        for waiter in self.ckpt_waiters.pop(pkey, []):
            waiter()


class SparkCheckpointEngine(SparkEngine):
    """Checkpoint-enabled Spark (encompassing Flint's ideas, §5.1.2).

    ``store_bandwidth_factor`` scales each GlusterFS server's effective
    throughput relative to the node's line rate (FUSE-based user-space
    filesystems deliver well below raw NIC/disk bandwidth).
    """

    name = "spark-checkpoint"

    def __init__(self, abort_on_fetch_failure: bool = True,
                 store_bandwidth_factor: float = 0.6) -> None:
        super().__init__(abort_on_fetch_failure)
        if store_bandwidth_factor <= 0:
            raise ValueError("store bandwidth factor must be positive")
        self.store_bandwidth_factor = store_bandwidth_factor

    def _make_master(self, ctx: SimContext,
                     program: Program) -> CheckpointMaster:
        return CheckpointMaster(ctx, program, self)

    def reserved_executor_count(self, cluster: ClusterConfig) -> int:
        """Reserved containers host the stable store, not executors."""
        return 0

    # ------------------------------------------------------------------
    # checkpointing

    def on_output_produced(self, master: CheckpointMaster, task: _SparkTask,
                           output: OutputRecord) -> None:
        if task.chain.name not in master._wide_producers:
            return
        if output.executor is None:
            return  # driver outputs are already durable
        pkey = task.key
        output.checkpoint_inflight = True

        def done(result: TransferResult) -> None:
            output.checkpoint_inflight = False
            if not result.ok:
                # The producer was evicted mid-checkpoint; waiters will
                # trigger recomputation through the normal fetch path.
                master.notify_checkpoint_done(pkey)
                return
            output.checkpointed = True
            master.ctx.bytes_checkpointed += int(output.size)
            master.notify_checkpoint_done(pkey)

        master.stable_store.write(pkey, int(output.size),
                                  output.executor.endpoint, done,
                                  payload=output.payload)

    # ------------------------------------------------------------------
    # fetching

    def fetch_output(self, master: CheckpointMaster, task: _SparkTask,
                     attempt: int, edge: Edge, pidx: int,
                     output: OutputRecord) -> None:
        if not edge.dep_type.is_wide or output.executor is None:
            # Narrow and broadcast fetches behave like plain Spark.
            super().fetch_output(master, task, attempt, edge, pidx, output)
            return
        producer_chain = master._chain_of_op[edge.src.name]
        pkey = (producer_chain.name, pidx)
        if output.checkpointed:
            self._fetch_from_store(master, task, attempt, edge, pidx,
                                   output, pkey)
        elif output.checkpoint_inflight:
            # §5.2.1: children can only start after parents checkpoint.
            master.ckpt_waiters.setdefault(pkey, []).append(
                lambda: self._after_checkpoint(master, task, attempt, edge,
                                               pidx, pkey))
            # Account the pending fetch so the attempt is not considered
            # complete until the checkpoint resolves.
        else:
            # Output exists locally but is not (being) checkpointed — the
            # producer is not a shuffle parent we track; pull directly.
            super().fetch_output(master, task, attempt, edge, pidx, output)

    def _after_checkpoint(self, master: CheckpointMaster, task: _SparkTask,
                          attempt: int, edge: Edge, pidx: int,
                          pkey: tuple) -> None:
        if task.attempt != attempt:
            return
        output = master.outputs.get(pkey)
        if output is not None and output.checkpointed:
            self._fetch_from_store(master, task, attempt, edge, pidx,
                                   output, pkey)
            return
        # Checkpoint failed (producer evicted): recompute the parent.
        if self.abort_on_fetch_failure:
            task.failed_parents.add(pkey)
            master._recompute(pkey)
            master.fetch.broke(task, attempt)
        else:
            master._refetch_later(task, attempt, edge, pidx, pkey)

    def _fetch_from_store(self, master: CheckpointMaster, task: _SparkTask,
                          attempt: int, edge: Edge, pidx: int,
                          output: OutputRecord, pkey: tuple) -> None:
        moved = transfer_share(edge, output.size)

        def done(result: TransferResult) -> None:
            if task.attempt != attempt:
                return
            if not result.ok:
                master.fetch.broke(task, attempt)
                return
            master.ctx.bytes_shuffled += int(moved)
            master.fetch.arrived_routed(task, attempt, edge, pidx,
                                        output.size, output.payload)

        master.stable_store.read_share(pkey, moved, task.executor.endpoint,
                                       done)
