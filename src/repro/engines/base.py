"""Shared engine infrastructure.

All three engines (Pado, Spark, Spark-checkpoint) run on the same simulated
cluster substrate so that JCT differences come only from engine mechanisms,
mirroring the paper's single-testbed comparison (§5.1). This module provides
the cluster/program/result types, executor bookkeeping, and the template
``run()`` flow engines plug into.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Union

import numpy as np

from repro.cluster.events import Simulator
from repro.cluster.manager import ResourceManager
from repro.cluster.network import (ContainerEndpoint, DiskModel, FifoPort,
                                   NetworkModel)
from repro.cluster.resources import (Container, NodeSpec, RESERVED_NODE,
                                     TRANSIENT_NODE)
from repro.cluster.storage import InputStore
from repro.dataflow.dag import LogicalDAG, SourceKind
from repro.errors import ExecutionError
from repro.obs.tracer import Tracer, active_collector
from repro.trace.models import EvictionRate, LifetimeModel


@dataclass(frozen=True)
class ClusterConfig:
    """The simulated cluster a job runs on (§5.1.1).

    The paper's default setup is 40 transient plus 5 reserved containers
    (the engine master runs on one additional reserved node, which we do not
    simulate except in master-failure tests).
    """

    num_reserved: int = 5
    num_transient: int = 40
    eviction: Union[EvictionRate, LifetimeModel] = EvictionRate.NONE
    reserved_spec: NodeSpec = RESERVED_NODE
    transient_spec: NodeSpec = TRANSIENT_NODE
    task_overhead_seconds: float = 0.2
    #: §6 extension: heterogeneous transient pools with estimated lifetimes
    #: (overrides ``num_transient``/``eviction`` for the transient side).
    transient_pools: Optional[tuple] = None

    def lifetime_model(self) -> LifetimeModel:
        if isinstance(self.eviction, EvictionRate):
            return self.eviction.lifetime_model()
        return self.eviction

    @property
    def effective_num_transient(self) -> int:
        if self.transient_pools is not None:
            return sum(pool.count for pool in self.transient_pools)
        return self.num_transient


@dataclass
class Program:
    """A dataflow program submitted to an engine."""

    dag: LogicalDAG
    name: str = "job"

    def __post_init__(self) -> None:
        self.dag.validate()

    def is_real(self) -> bool:
        """True when every operator carries an executable function."""
        return all(op.fn is not None for op in self.dag.operators)


@dataclass
class JobResult:
    """Metrics of one job execution — the quantities Figures 5-9 plot."""

    engine: str
    workload: str
    completed: bool
    jct_seconds: float
    original_tasks: int
    launched_tasks: int
    evictions: int
    bytes_input_read: int = 0
    bytes_shuffled: int = 0
    bytes_pushed: int = 0
    bytes_checkpointed: int = 0
    outputs: Optional[dict[str, dict[int, list]]] = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def relaunched_tasks(self) -> int:
        return max(0, self.launched_tasks - self.original_tasks)

    @property
    def relaunched_ratio(self) -> float:
        """Relaunched tasks over original tasks (bottom panels of Figs 5-7)."""
        if self.original_tasks == 0:
            return 0.0
        return self.relaunched_tasks / self.original_tasks

    @property
    def jct_minutes(self) -> float:
        return self.jct_seconds / 60.0

    def collected(self, op_name: str) -> list:
        """All output records of an operator (real-data runs only)."""
        if self.outputs is None or op_name not in self.outputs:
            raise ExecutionError(f"no recorded output for {op_name!r}")
        parts = self.outputs[op_name]
        return [record for idx in sorted(parts) for record in parts[idx]]


class SimExecutor:
    """Executor process bound to one container (§3.2.4).

    Transient-task execution occupies task slots (one per core); reserved
    receivers additionally serialize their processing through the ``cpu``
    FIFO, modelling the limited computational resources of the few reserved
    executors that §3.2.7 worries about.
    """

    def __init__(self, container: Container, sim: Simulator,
                 slots: Optional[int] = None) -> None:
        self.container = container
        self.endpoint = ContainerEndpoint(container)
        self.disk = DiskModel(sim, container)
        self.cpu = FifoPort(container.spec.cores
                            * container.spec.cpu_throughput)
        self.slots = slots if slots is not None else container.spec.cores
        self.free_slots = self.slots
        self.cache: Optional[Any] = None  # attached by engines that cache

    @property
    def executor_id(self) -> int:
        return self.container.container_id

    @property
    def alive(self) -> bool:
        return self.container.alive

    @property
    def is_reserved(self) -> bool:
        return self.container.is_reserved

    def acquire_slot(self) -> bool:
        if self.free_slots <= 0:
            return False
        self.free_slots -= 1
        return True

    def release_slot(self) -> None:
        if self.free_slots >= self.slots:
            raise ExecutionError("slot released twice")
        self.free_slots += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "R" if self.is_reserved else "T"
        return f"<Executor {self.executor_id}{kind}>"


class SimContext:
    """Everything a single job execution shares: simulator, cluster, stores,
    and byte counters."""

    def __init__(self, cluster: ClusterConfig, seed: int,
                 tracer: Optional[Tracer] = None) -> None:
        self.cluster = cluster
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.tracer = tracer
        self.net = NetworkModel(self.sim, tracer=tracer)
        self.input_store = InputStore(self.sim, self.net)
        self.rm = ResourceManager(self.sim, cluster.lifetime_model(),
                                  self.rng,
                                  reserved_spec=cluster.reserved_spec,
                                  transient_spec=cluster.transient_spec,
                                  tracer=tracer)
        self.tasks_launched = 0
        self.bytes_pushed = 0
        self.bytes_shuffled = 0
        self.bytes_checkpointed = 0

    def allocate(self, num_reserved: int) -> None:
        """Bring the configured cluster online (homogeneous transient pool
        or the §6 heterogeneous pools)."""
        if self.cluster.transient_pools is not None:
            self.rm.allocate_pools(num_reserved,
                                   list(self.cluster.transient_pools))
        else:
            self.rm.allocate(num_reserved, self.cluster.num_transient)

    def register_inputs(self, program: Program) -> None:
        """Materialize every READ source's partitions in the input store."""
        for op in program.dag.operators:
            if op.source_kind is not SourceKind.READ:
                continue
            partitions = getattr(op.fn, "partitions", None)
            if partitions is not None:
                for index, records in enumerate(partitions):
                    size = len(records) * op.record_bytes
                    self.input_store.put((op.input_ref, index), size,
                                         payload=list(records))
            elif op.partition_bytes is not None:
                for index, size in enumerate(op.partition_bytes):
                    self.input_store.put((op.input_ref, index), size)
            else:
                raise ExecutionError(
                    f"read source {op.name!r} has neither real partitions "
                    f"nor partition sizes")


class EngineBase:
    """Template for engines; subclasses implement :meth:`_start`."""

    name = "engine"

    def run(self, program: Program, cluster: ClusterConfig,
            seed: int = 0, time_limit: Optional[float] = None,
            max_events: int = 20_000_000,
            tracer: Optional[Tracer] = None) -> JobResult:
        """Execute ``program`` on a fresh simulated cluster.

        ``time_limit`` caps simulated time (the paper cuts Spark's ALS runs
        at 90 minutes); a job still running at the limit is reported with
        ``completed=False`` and ``jct_seconds=time_limit``.

        ``tracer`` records structured events (see :mod:`repro.obs`); when
        omitted and a trace collector is installed, a fresh labelled tracer
        is drawn from it, otherwise the run is untraced and the hot path
        pays only null checks.
        """
        if tracer is None:
            collector = active_collector()
            if collector is not None:
                tracer = collector.new_tracer(
                    f"{self.name}-{program.name}-seed{seed}")
        ctx = SimContext(cluster, seed, tracer=tracer)
        ctx.register_inputs(program)
        state = self._start(ctx, program)
        # The eviction/replacement schedule keeps the event heap non-empty
        # forever, so we step until the job reports completion (or the
        # simulated-time limit / event budget runs out).
        executed = 0
        while not self._is_done(state):
            next_time = ctx.sim.peek_time()
            if math.isinf(next_time):
                break  # no more events: the job cannot make progress
            if time_limit is not None and next_time > time_limit:
                break
            ctx.sim.step()
            executed += 1
            if executed > max_events:
                raise ExecutionError(
                    f"{self.name}: exceeded {max_events} events; "
                    f"likely livelock")
        return self._finish(ctx, program, state, time_limit)

    # ------------------------------------------------------------------
    # subclass hooks

    def _start(self, ctx: SimContext, program: Program) -> Any:
        raise NotImplementedError

    def _is_done(self, state: Any) -> bool:
        raise NotImplementedError

    def _finish(self, ctx: SimContext, program: Program, state: Any,
                time_limit: Optional[float]) -> JobResult:
        raise NotImplementedError


def partition_payload_size(records: list, record_bytes: int) -> int:
    """Simulated byte size of a real partition."""
    return len(records) * record_bytes
