"""Shared engine infrastructure.

All three engines (Pado, Spark, Spark-checkpoint) run on the same simulated
cluster substrate so that JCT differences come only from engine mechanisms,
mirroring the paper's single-testbed comparison (§5.1). This module provides
the cluster/program/result types, the template ``run()`` flow, and
:class:`MasterBase` — the harness that wires the :mod:`repro.core.exec`
substrate (task state machine, fetch service, output registry) under each
engine's master so the master contributes only policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.cluster.events import Simulator
from repro.cluster.manager import ResourceManager
from repro.cluster.network import NetworkModel
from repro.cluster.resources import (NodeSpec, RESERVED_NODE,
                                     TRANSIENT_NODE)
from repro.cluster.storage import InputStore
from repro.core.exec import records
from repro.core.exec.attempt import TaskAttempt, TaskState
from repro.core.exec.executor import SimExecutor
from repro.core.exec.fetch import FetchService, RetryPolicy
from repro.core.exec.outputs import OutputRegistry
from repro.core.exec.records import AttemptTable
from repro.core.runtime.scheduler import SchedulingPolicy, TaskScheduler
from repro.dataflow.dag import LogicalDAG, SourceKind
from repro.errors import ExecutionError
from repro.obs.events import Relaunch, TaskStart
from repro.obs.tracer import Tracer, active_collector
from repro.trace.models import EvictionRate, LifetimeModel

__all__ = ["ClusterConfig", "Program", "JobResult", "SimExecutor",
           "SimContext", "EngineBase", "MasterBase",
           "partition_payload_size"]


@dataclass(frozen=True)
class ClusterConfig:
    """The simulated cluster a job runs on (§5.1.1).

    The paper's default setup is 40 transient plus 5 reserved containers
    (the engine master runs on one additional reserved node, which we do not
    simulate except in master-failure tests).
    """

    num_reserved: int = 5
    num_transient: int = 40
    eviction: Union[EvictionRate, LifetimeModel] = EvictionRate.NONE
    reserved_spec: NodeSpec = RESERVED_NODE
    transient_spec: NodeSpec = TRANSIENT_NODE
    task_overhead_seconds: float = 0.2
    #: §6 extension: heterogeneous transient pools with estimated lifetimes
    #: (overrides ``num_transient``/``eviction`` for the transient side).
    transient_pools: Optional[tuple] = None

    def lifetime_model(self) -> LifetimeModel:
        if isinstance(self.eviction, EvictionRate):
            return self.eviction.lifetime_model()
        return self.eviction

    @property
    def effective_num_transient(self) -> int:
        if self.transient_pools is not None:
            return sum(pool.count for pool in self.transient_pools)
        return self.num_transient


@dataclass
class Program:
    """A dataflow program submitted to an engine."""

    dag: LogicalDAG
    name: str = "job"

    def __post_init__(self) -> None:
        self.dag.validate()

    def is_real(self) -> bool:
        """True when every operator carries an executable function."""
        return all(op.fn is not None for op in self.dag.operators)


@dataclass
class JobResult:
    """Metrics of one job execution — the quantities Figures 5-9 plot."""

    engine: str
    workload: str
    completed: bool
    jct_seconds: float
    original_tasks: int
    launched_tasks: int
    evictions: int
    bytes_input_read: int = 0
    bytes_shuffled: int = 0
    bytes_pushed: int = 0
    bytes_checkpointed: int = 0
    outputs: Optional[dict[str, dict[int, list]]] = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def relaunched_tasks(self) -> int:
        return max(0, self.launched_tasks - self.original_tasks)

    @property
    def relaunched_ratio(self) -> float:
        """Relaunched tasks over original tasks (bottom panels of Figs 5-7)."""
        if self.original_tasks == 0:
            return 0.0
        return self.relaunched_tasks / self.original_tasks

    @property
    def jct_minutes(self) -> float:
        return self.jct_seconds / 60.0

    def collected(self, op_name: str) -> list:
        """All output records of an operator (real-data runs only)."""
        if self.outputs is None or op_name not in self.outputs:
            raise ExecutionError(f"no recorded output for {op_name!r}")
        parts = self.outputs[op_name]
        return [record for idx in sorted(parts) for record in parts[idx]]


class SimContext:
    """Everything a single job execution shares: simulator, cluster, stores,
    and byte counters."""

    def __init__(self, cluster: ClusterConfig, seed: int,
                 tracer: Optional[Tracer] = None) -> None:
        self.cluster = cluster
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.tracer = tracer
        self.net = NetworkModel(self.sim, tracer=tracer)
        self.input_store = InputStore(self.sim, self.net)
        self.rm = ResourceManager(self.sim, cluster.lifetime_model(),
                                  self.rng,
                                  reserved_spec=cluster.reserved_spec,
                                  transient_spec=cluster.transient_spec,
                                  tracer=tracer)
        self.tasks_launched = 0
        self.bytes_pushed = 0
        self.bytes_shuffled = 0
        self.bytes_checkpointed = 0

    def allocate(self, num_reserved: int) -> None:
        """Bring the configured cluster online (homogeneous transient pool
        or the §6 heterogeneous pools)."""
        if self.cluster.transient_pools is not None:
            self.rm.allocate_pools(num_reserved,
                                   list(self.cluster.transient_pools))
        else:
            self.rm.allocate(num_reserved, self.cluster.num_transient)

    def register_inputs(self, program: Program) -> None:
        """Materialize every READ source's partitions in the input store."""
        for op in program.dag.operators:
            if op.source_kind is not SourceKind.READ:
                continue
            partitions = getattr(op.fn, "partitions", None)
            if partitions is not None:
                for index, records in enumerate(partitions):
                    size = len(records) * op.record_bytes
                    self.input_store.put((op.input_ref, index), size,
                                         payload=list(records))
            elif op.partition_bytes is not None:
                for index, size in enumerate(op.partition_bytes):
                    self.input_store.put((op.input_ref, index), size)
            else:
                raise ExecutionError(
                    f"read source {op.name!r} has neither real partitions "
                    f"nor partition sizes")


class MasterBase:
    """Shared harness under the engine masters.

    Wires the :mod:`repro.core.exec` substrate — scheduler, output
    registry, fetch service — and implements the task lifecycle steps every
    engine repeats identically: slot assignment, the fetch barrier start,
    compute scheduling, relaunch tracing, and eviction-time relaunching.
    Subclasses supply policy through the hooks at the bottom.
    """

    #: Executor whose tasks bypass scheduler slots (the Spark driver).
    slotless: Optional[SimExecutor] = None

    def __init__(self, ctx: SimContext,
                 scheduling_policy: Optional[SchedulingPolicy] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.ctx = ctx
        self.sim = ctx.sim
        self.net = ctx.net
        self.tracer = ctx.tracer
        self.scheduler = TaskScheduler(scheduling_policy)
        self.scheduler.attach_tracer(ctx.tracer, self.sim)
        #: One packed attempt table shared by every task of the job (see
        #: :mod:`repro.core.exec.records`); subclasses pass it into task
        #: construction.
        self.attempts = AttemptTable()
        self.outputs = OutputRegistry(tracer=ctx.tracer, sim=self.sim)
        self.fetch = FetchService(
            input_store=ctx.input_store, scheduler=self.scheduler,
            on_ready=self._start_compute, after_abort=self._after_abort,
            trace_relaunch=self._trace_relaunch, retry=retry_policy)
        self.job_outputs: dict[str, dict[int, list]] = {}
        self.completed = False
        self.jct: Optional[float] = None

    # ------------------------------------------------------------------
    # shared lifecycle steps

    def _trace_relaunch(self, task: TaskAttempt, cause: str,
                        cause_ref: Optional[int] = None) -> None:
        """Emit a Relaunch for the attempt being abandoned (call *before*
        ``task.reset()`` so the attempt number still names it)."""
        if self.tracer is not None:
            name, index = task.key
            self.tracer.emit(Relaunch(
                time=self.sim.now, stage=self.stage_index_of(task),
                task=name, index=index, attempt=task.attempt, cause=cause,
                cause_ref=cause_ref))

    def _resource_label(self, executor: SimExecutor) -> str:
        if executor is self.slotless:
            return "driver"
        return "reserved" if executor.is_reserved else "transient"

    def _task_assigned(self, task: TaskAttempt,
                       executor: SimExecutor) -> None:
        """Scheduler callback: a slot was acquired for this task."""
        if task.status != TaskState.QUEUED:
            # Stale queue entry (the task was reset and resubmitted, or
            # assigned via an earlier duplicate entry): give the slot back.
            if executor is not self.slotless:
                executor.release_slot()
                self.scheduler.slot_released()
            return
        task.begin_attempt(executor)
        self.ctx.tasks_launched += 1
        if self.tracer is not None:
            name, index = task.key
            self.tracer.emit(TaskStart(
                time=self.sim.now, stage=self.stage_index_of(task),
                task=name, index=index, attempt=task.attempt,
                executor=executor.executor_id,
                resource=self._resource_label(executor)))
        attempt = task.attempt
        fetches, count = self._plan_fetches(task, attempt)
        self.fetch.begin(task, fetches, count)

    def _start_compute(self, task: TaskAttempt) -> None:
        """All inputs arrived: run the fused chain on the executor."""
        task.status = TaskState.COMPUTING
        spec = task.executor.container.spec
        total = sum(task.input_bytes_by_parent.values())
        seconds = task.chain.compute_seconds(total, spec.cpu_throughput)
        seconds += self.ctx.cluster.task_overhead_seconds
        attempt = task.attempt
        self._schedule_compute(task, seconds,
                               lambda: self._compute_done(task, attempt))

    def _schedule_compute(self, task: TaskAttempt, seconds: float,
                          callback: Callable[[], None]) -> None:
        self.sim.schedule_fast(seconds, callback)

    def _relaunch_lost(self, executor: SimExecutor, cause: str,
                       cause_ref: Optional[int] = None,
                       within: Optional[Callable[[TaskAttempt], bool]] = None,
                       ) -> None:
        """Relaunch the active attempts scheduled on a lost executor.

        Sweeps only the attempt table's per-executor row bucket instead of
        every task of every stage; ``within`` optionally restricts the
        sweep (Pado relaunches stage by stage, interleaved with its
        per-stage output purges). Rows come back in task-creation order,
        matching the full scans this replaced.
        """
        table = self.attempts
        rows = table.rows_on(executor.executor_id)
        if not rows:
            return
        status = table.status
        for row in rows:
            if not records.FETCHING <= status[row] <= records.DELIVERING:
                continue
            task = table.tasks[row]
            if task.executor is not executor:
                continue
            if within is not None and not within(task):
                continue
            self._trace_relaunch(task, cause, cause_ref=cause_ref)
            task.reset()
            self._resubmit(task)

    def _find_executor(self, container) -> Optional[SimExecutor]:
        executor = self.scheduler.executor_for(container.container_id)
        if executor is not None and executor.container is container:
            return executor
        for executor in self._extra_executors():
            if executor.container is container:
                return executor
        return None

    # ------------------------------------------------------------------
    # policy hooks

    def stage_index_of(self, task: TaskAttempt) -> int:
        """Trace stage index for a task."""
        raise NotImplementedError

    def _plan_fetches(self, task: TaskAttempt,
                      attempt: int) -> tuple[list[Callable[[], None]], int]:
        """The input fetches this attempt must complete before computing.

        Returns ``(fetches, count)``: the callables to issue and the
        number of barrier arrivals they produce (a callable may issue a
        whole bulk fetch plan, so ``count >= len(fetches)``)."""
        raise NotImplementedError

    def _compute_done(self, task: TaskAttempt, attempt: int) -> None:
        """The chain finished computing; deliver its output."""
        raise NotImplementedError

    def _resubmit(self, task: TaskAttempt) -> None:
        """Requeue a reset task per engine semantics."""
        raise NotImplementedError

    def _after_abort(self, task: TaskAttempt, failed_parents: set) -> None:
        """An attempt was abandoned by the fetch service; default: requeue
        immediately."""
        self._resubmit(task)

    def _extra_executors(self):
        """Executors outside the scheduler pool (e.g. Pado's reserved)."""
        return ()

    # ------------------------------------------------------------------
    # result hooks (consumed by EngineBase._finish)

    def original_task_count(self) -> int:
        raise NotImplementedError

    def result_extras(self) -> dict[str, Any]:
        return {}


class EngineBase:
    """Template for engines; subclasses implement :meth:`_start`."""

    name = "engine"

    def run(self, program: Program, cluster: ClusterConfig,
            seed: int = 0, time_limit: Optional[float] = None,
            max_events: int = 20_000_000,
            tracer: Optional[Tracer] = None,
            trace_label: Optional[str] = None) -> JobResult:
        """Execute ``program`` on a fresh simulated cluster.

        ``time_limit`` caps simulated time (the paper cuts Spark's ALS runs
        at 90 minutes); a job still running at the limit is reported with
        ``completed=False`` and ``jct_seconds=time_limit``.

        ``tracer`` records structured events (see :mod:`repro.obs`); when
        omitted and a trace collector is installed, a fresh labelled tracer
        is drawn from it, otherwise the run is untraced and the hot path
        pays only null checks. ``trace_label`` overrides the default
        ``engine-program-seed`` collector label (multi-tenant runs label
        traces ``tenant/job_id`` instead).
        """
        if tracer is None:
            collector = active_collector()
            if collector is not None:
                tracer = collector.new_tracer(
                    trace_label if trace_label is not None
                    else f"{self.name}-{program.name}-seed{seed}")
        ctx = SimContext(cluster, seed, tracer=tracer)
        ctx.register_inputs(program)
        state = self._start(ctx, program)
        # The eviction/replacement schedule keeps the event heap non-empty
        # forever, so we step until the job reports completion (or the
        # simulated-time limit / event budget runs out).
        executed = 0
        while not self._is_done(state):
            next_time = ctx.sim.peek_time()
            if math.isinf(next_time):
                break  # no more events: the job cannot make progress
            if time_limit is not None and next_time > time_limit:
                break
            ctx.sim.step()
            executed += 1
            if executed > max_events:
                raise ExecutionError(
                    f"{self.name}: exceeded {max_events} events; "
                    f"likely livelock")
        return self._finish(ctx, program, state, time_limit)

    # ------------------------------------------------------------------
    # subclass hooks

    def _start(self, ctx: SimContext, program: Program) -> Any:
        raise NotImplementedError

    def _is_done(self, master: Any) -> bool:
        return master.completed

    def _finish(self, ctx: SimContext, program: Program, master: Any,
                time_limit: Optional[float]) -> JobResult:
        """Assemble the JobResult from the context counters and the
        master's :meth:`MasterBase.original_task_count` /
        :meth:`MasterBase.result_extras` hooks."""
        completed = master.completed
        if completed:
            jct = master.jct
        else:
            jct = time_limit if time_limit is not None else ctx.sim.now
        return JobResult(
            engine=self.name,
            workload=program.name,
            completed=completed,
            jct_seconds=float(jct if jct is not None else ctx.sim.now),
            original_tasks=master.original_task_count(),
            launched_tasks=ctx.tasks_launched,
            evictions=ctx.rm.evictions,
            bytes_input_read=ctx.input_store.bytes_read,
            bytes_shuffled=ctx.bytes_shuffled,
            bytes_pushed=ctx.bytes_pushed,
            bytes_checkpointed=ctx.bytes_checkpointed,
            outputs=master.job_outputs if program.is_real() else None,
            extras=master.result_extras(),
        )


def partition_payload_size(records: list, record_bytes: int) -> int:
    """Simulated byte size of a real partition."""
    return len(records) * record_bytes
