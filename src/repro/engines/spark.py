"""Spark 2.0.0 baseline (§5.1.2).

Models the execution semantics that drive the paper's Spark numbers:

* the logical DAG is pipelined into stages cut at wide (shuffle) edges;
  parallelism-1 operators (model creation/update in MLR) run on the
  never-evicted driver, matching MLlib's collect-to-driver aggregation;
* tasks run on executors placed on *both* transient and reserved containers;
* map outputs are preserved on the producing executor's local disk and
  pulled by the consuming tasks (pull-based shuffle);
* an eviction destroys the container's local map outputs; a consumer's
  fetch failure triggers recomputation of the missing parent tasks, which
  recursively triggers their parents — the cascading critical chain (§2.2).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cluster.network import TransferResult
from repro.cluster.resources import Container, ContainerKind
from repro.core.compiler.fusion import FusedOperator, fuse_operators
from repro.core.runtime.cache import LruCache
from repro.core.runtime.scheduler import RoundRobinPolicy, TaskScheduler
from repro.dataflow.dag import (DependencyType, Edge, route_output,
                                route_sizes, source_indices)
from repro.engines.base import (ClusterConfig, EngineBase, JobResult,
                                Program, SimContext, SimExecutor)
from repro.obs.events import (FetchMiss, Relaunch, StageEnd, StageStart,
                              TaskCommitted, TaskStart)


def transfer_share(edge: Edge, output_size: float) -> float:
    """Bytes actually moved when one consumer task pulls one parent output:
    many-to-many moves only the consumer's hash partition."""
    if edge.dep_type is DependencyType.MANY_TO_MANY:
        return output_size / edge.dst.parallelism
    return output_size


class _Output:
    """One task's output: where it lives and whether it is still there."""

    __slots__ = ("executor", "size", "payload", "available",
                 "checkpointed", "checkpoint_inflight")

    def __init__(self, executor: Optional[SimExecutor], size: float,
                 payload: Optional[list]) -> None:
        self.executor = executor          # None = lives on the driver
        self.size = size
        self.payload = payload
        self.available = True
        self.checkpointed = False
        self.checkpoint_inflight = False


class _SparkTask:
    PENDING = "pending"
    QUEUED = "queued"
    ASSIGNED = "assigned"
    RUNNING = "running"
    WRITING = "writing"
    DONE = "done"

    def __init__(self, chain: FusedOperator, index: int) -> None:
        self.chain = chain
        self.index = index
        self.status = self.PENDING
        self.executor: Optional[SimExecutor] = None
        self.attempt = 0
        self.cache_keys: set = set()
        self.outstanding = 0
        self.fetch_failed = False
        self.failed_parents: set = set()
        self.input_bytes_by_parent: dict[str, float] = {}
        self.external_inputs: dict[str, list] = {}
        self.master: Optional["SparkMaster"] = None

    @property
    def key(self) -> tuple:
        return (self.chain.name, self.index)

    def assign(self, executor: SimExecutor) -> None:
        self.master._task_assigned(self, executor)

    def reset(self) -> None:
        self.attempt += 1
        self.status = self.PENDING
        self.executor = None
        self.outstanding = 0
        self.fetch_failed = False
        self.failed_parents = set()
        self.input_bytes_by_parent = {}
        self.external_inputs = {}


class _ChainRun:
    def __init__(self, chain: FusedOperator, on_driver: bool,
                 is_sink: bool) -> None:
        self.chain = chain
        self.on_driver = on_driver
        self.is_sink = is_sink
        self.started = False
        self.trace_open = False   # StageStart emitted, StageEnd pending
        self.tasks = [_SparkTask(chain, i) for i in range(chain.parallelism)]


class SparkMaster:
    """Drives one Spark job on the shared simulator substrate."""

    def __init__(self, ctx: SimContext, program: Program,
                 engine: "SparkEngine") -> None:
        self.ctx = ctx
        self.program = program
        self.engine = engine
        self.sim = ctx.sim
        self.net = ctx.net
        dag = program.dag
        self.dag = dag
        self.chains = fuse_operators(dag, dag.operators,
                                     require_same_placement=False)
        self._chain_of_op = {op.name: c for c in self.chains for op in c.ops}
        self.runs: dict[str, _ChainRun] = {}
        sink_names = {op.name for op in dag.sinks()}
        for chain in self.chains:
            on_driver = chain.parallelism == 1
            is_sink = chain.terminal.name in sink_names
            self.runs[chain.name] = _ChainRun(chain, on_driver, is_sink)
        self.tracer = ctx.tracer
        self._stage_index = {chain.name: i
                             for i, chain in enumerate(self.chains)}
        self.scheduler = TaskScheduler(RoundRobinPolicy())
        self.scheduler.attach_tracer(ctx.tracer, self.sim)
        self.driver = self._make_driver()
        self.outputs: dict[tuple, _Output] = {}
        self._waiters: dict[tuple, list[Callable[[], None]]] = {}
        # Per-executor coalescing of broadcast fetches (TorrentBroadcast
        # fetches each block once per executor).
        self._inflight_bcast: dict[tuple, list] = {}
        self.job_outputs: dict[str, dict[int, list]] = {}
        self.completed = False
        self.jct: Optional[float] = None

    # ------------------------------------------------------------------
    # setup

    def _make_driver(self) -> SimExecutor:
        """The Spark driver runs on its own reserved container (§5.2)."""
        container = Container(kind=ContainerKind.RESERVED,
                              spec=self.ctx.cluster.reserved_spec)
        return SimExecutor(container, self.sim)

    def start(self) -> None:
        self.ctx.rm.on_container(self._on_container)
        self.ctx.rm.on_eviction(self._on_container_lost)
        self.ctx.allocate(self.engine.reserved_executor_count(
            self.ctx.cluster))
        for run in self.runs.values():
            self._maybe_start_chain(run)

    def _on_container(self, container: Container) -> None:
        executor = SimExecutor(container, self.sim)
        # Broadcast blocks are cached per executor (TorrentBroadcast).
        executor.cache = LruCache(container.spec.memory_bytes * 0.3)
        self.scheduler.add_executor(executor)

    # ------------------------------------------------------------------
    # chain (stage) scheduling

    def _parents_of(self, chain: FusedOperator) -> list[FusedOperator]:
        return [self._chain_of_op[e.src.name]
                for e in chain.external_in_edges()]

    def _maybe_start_chain(self, run: _ChainRun) -> None:
        """Submit a stage once every parent stage has fully completed."""
        if run.started:
            return
        for parent in self._parents_of(run.chain):
            parent_run = self.runs[parent.name]
            if not all(t.status == _SparkTask.DONE
                       for t in parent_run.tasks):
                return
        run.started = True
        if self.tracer is not None:
            run.trace_open = True
            self.tracer.emit(StageStart(
                time=self.sim.now,
                stage=self._stage_index[run.chain.name],
                name=run.chain.name))
        for task in run.tasks:
            task.master = self
            self._submit(task)

    def _submit(self, task: _SparkTask) -> None:
        if task.status != _SparkTask.PENDING:
            return
        run = self.runs[task.chain.name]
        task.status = _SparkTask.QUEUED
        if run.on_driver:
            # Driver-resident work starts immediately (no slot needed).
            self._task_assigned(task, self.driver)
        else:
            self.scheduler.submit(task)

    # ------------------------------------------------------------------
    # task execution

    def _task_assigned(self, task: _SparkTask, executor: SimExecutor) -> None:
        if task.status != _SparkTask.QUEUED:
            if executor is not self.driver:
                executor.release_slot()
                self.scheduler.slot_released()
            return
        task.status = _SparkTask.ASSIGNED
        task.executor = executor
        self.ctx.tasks_launched += 1
        if self.tracer is not None:
            resource = "driver" if executor is self.driver else \
                ("reserved" if executor.is_reserved else "transient")
            self.tracer.emit(TaskStart(
                time=self.sim.now,
                stage=self._stage_index[task.chain.name],
                task=task.chain.name, index=task.index,
                attempt=task.attempt, executor=executor.executor_id,
                resource=resource))
        attempt = task.attempt
        fetches: list[Callable[[], None]] = []
        chain = task.chain
        head = chain.head
        if chain.is_source_chain() and head.input_ref is not None:
            fetches.append(lambda: self._fetch_source(task, attempt))
        for edge in chain.external_in_edges():
            for pidx in source_indices(edge, task.index):
                fetches.append(lambda e=edge, p=pidx:
                               self._fetch_edge(task, attempt, e, p))
        task.outstanding = len(fetches)
        if not fetches:
            self._start_compute(task)
            return
        for fetch in fetches:
            fetch()

    def _fetch_source(self, task: _SparkTask, attempt: int) -> None:
        key = (task.chain.head.input_ref, task.index)
        size = self.ctx.input_store.size_of(key)

        def done(result: TransferResult) -> None:
            if not result.ok:
                self._fetch_broke(task, attempt)
                return
            self._fetch_arrived(task, attempt, task.chain.head.name, size,
                                None)

        self.ctx.input_store.read(key, task.executor.endpoint, done)

    def _fetch_edge(self, task: _SparkTask, attempt: int, edge: Edge,
                    pidx: int) -> None:
        if task.attempt != attempt or task.status != _SparkTask.ASSIGNED:
            return  # stale re-fetch after the task was reset
        producer_chain = self._chain_of_op[edge.src.name]
        pkey = (producer_chain.name, pidx)
        is_broadcast = edge.dep_type is DependencyType.ONE_TO_MANY
        if is_broadcast and task.executor.cache is not None:
            cached = task.executor.cache.get(pkey)
            if cached is not None:
                size, payload = cached
                self._edge_arrived(task, attempt, edge, pidx, size, payload)
                return
        output = self.outputs.get(pkey)
        if output is None or not self._output_reachable(output):
            # Fetch failure: the parent output is gone — recompute it (the
            # critical chain). Depending on engine semantics either the
            # whole task attempt fails (real Spark's FetchFailed handling)
            # or only this fetch is re-issued once the output is back.
            if self.tracer is not None:
                self.tracer.emit(FetchMiss(time=self.sim.now,
                                           op=edge.src.name, index=pidx))
            if self.engine.abort_on_fetch_failure:
                task.failed_parents.add(pkey)
                self._recompute(pkey)
                self._fetch_broke(task, attempt)
            else:
                self._refetch_later(task, attempt, edge, pidx, pkey)
            return
        if is_broadcast and task.executor.cache is not None:
            inflight_key = (task.executor.executor_id, pkey)
            waiters = self._inflight_bcast.get(inflight_key)
            if waiters is not None:
                waiters.append((task, attempt, edge, pidx))
                return
            self._inflight_bcast[inflight_key] = []
        self.engine.fetch_output(self, task, attempt, edge, pidx, output)

    def _output_reachable(self, output: _Output) -> bool:
        if output.checkpointed:
            return True  # durable on the stable store
        if not output.available:
            return False
        if output.executor is None:
            return True  # driver-resident
        return output.executor.alive

    def _deliver_edge_fetch(self, task: _SparkTask, attempt: int, edge: Edge,
                            pidx: int, output: _Output,
                            src_endpoint: Any) -> None:
        """Pull one parent output over the network. Shuffle (many-to-many)
        fetches only move this task's partition of the output."""
        producer_chain = self._chain_of_op[edge.src.name]
        pkey = (producer_chain.name, pidx)
        moved = transfer_share(edge, output.size)
        coalesced = (edge.dep_type is DependencyType.ONE_TO_MANY
                     and task.executor.cache is not None)
        inflight_key = (task.executor.executor_id, pkey)

        def done(result: TransferResult) -> None:
            waiters = (self._inflight_bcast.pop(inflight_key, [])
                       if coalesced else [])
            if not result.ok:
                if task.attempt == attempt:
                    if not self._output_reachable(output):
                        # Source died mid-transfer.
                        output.available = output.checkpointed
                        if self.tracer is not None:
                            self.tracer.emit(FetchMiss(
                                time=self.sim.now,
                                op=edge.src.name, index=pidx))
                        if self.engine.abort_on_fetch_failure:
                            task.failed_parents.add(pkey)
                            self._recompute(pkey)
                            self._fetch_broke(task, attempt)
                        else:
                            self._refetch_later(task, attempt, edge, pidx,
                                                pkey)
                    # else: we died; the eviction handler reset the task.
                for other, a2, e2, p2 in waiters:
                    self._fetch_edge(other, a2, e2, p2)
                return
            self.ctx.bytes_shuffled += int(moved)
            if coalesced:
                task.executor.cache.put(pkey, output.size, output.payload)
            if task.attempt == attempt:
                self._edge_arrived(task, attempt, edge, pidx, output.size,
                                   output.payload)
            for other, a2, e2, p2 in waiters:
                self._edge_arrived(other, a2, e2, p2, output.size,
                                   output.payload)

        if output.executor is task.executor:
            done(TransferResult(True, self.sim.now, int(moved)))
            return
        self.net.transfer(src_endpoint, task.executor.endpoint, moved, done)

    def _edge_arrived(self, task: _SparkTask, attempt: int, edge: Edge,
                      pidx: int, size: float,
                      payload: Optional[list]) -> None:
        share = route_sizes(edge, pidx, size).get(task.index, 0.0)
        routed = None
        if payload is not None:
            routed = route_output(edge, pidx, payload).get(task.index, [])
        self._fetch_arrived(task, attempt, edge.src.name, share, routed)

    def _fetch_arrived(self, task: _SparkTask, attempt: int,
                       parent_name: str, size: float,
                       payload: Optional[list]) -> None:
        if task.attempt != attempt or task.status != _SparkTask.ASSIGNED:
            return
        task.input_bytes_by_parent[parent_name] = \
            task.input_bytes_by_parent.get(parent_name, 0.0) + size
        if payload is not None:
            task.external_inputs.setdefault(parent_name, []).extend(payload)
        task.outstanding -= 1
        if task.outstanding == 0:
            if task.fetch_failed:
                self._abort_attempt(task)
            else:
                self._start_compute(task)

    def _fetch_broke(self, task: _SparkTask, attempt: int) -> None:
        if task.attempt != attempt or task.status != _SparkTask.ASSIGNED:
            return
        task.fetch_failed = True
        task.outstanding -= 1
        if task.outstanding == 0:
            self._abort_attempt(task)

    def _trace_relaunch(self, task: _SparkTask, cause: str,
                        cause_ref: Optional[int] = None) -> None:
        if self.tracer is not None:
            self.tracer.emit(Relaunch(
                time=self.sim.now,
                stage=self._stage_index[task.chain.name],
                task=task.chain.name, index=task.index,
                attempt=task.attempt, cause=cause, cause_ref=cause_ref))

    def _abort_attempt(self, task: _SparkTask) -> None:
        executor = task.executor
        failed = set(task.failed_parents)
        self._trace_relaunch(task, "fetch-failed")
        task.reset()
        if executor is not None and executor is not self.driver \
                and executor.alive:
            executor.release_slot()
            self.scheduler.slot_released()
        # Re-check the parents that broke this attempt *now*: any of them
        # may have been recomputed while the other fetches were draining.
        missing = []
        for pkey in failed:
            output = self.outputs.get(pkey)
            if output is None or not self._output_reachable(output):
                missing.append(pkey)
        if not missing:
            self._submit(task)
            return
        for pkey in missing:
            self._waiters.setdefault(pkey, []).append(
                lambda: self._retry_task(task))
            self._recompute(pkey)

    def _retry_task(self, task: _SparkTask) -> None:
        if task.status == _SparkTask.PENDING:
            self._submit(task)

    def _refetch_later(self, task: _SparkTask, attempt: int, edge: Edge,
                       pidx: int, pkey: tuple) -> None:
        """Recompute a lost parent output, then re-issue one fetch.

        The attempt's other fetched partitions are kept, so one eviction does
        not force re-pulling the whole shuffle input (real Spark retries
        batch lost map outputs similarly at stage granularity).
        """
        self._waiters.setdefault(pkey, []).append(
            lambda: self._fetch_edge(task, attempt, edge, pidx))
        self._recompute(pkey)

    def _start_compute(self, task: _SparkTask) -> None:
        task.status = _SparkTask.RUNNING
        spec = task.executor.container.spec
        total = sum(task.input_bytes_by_parent.values())
        seconds = task.chain.compute_seconds(total, spec.cpu_throughput)
        seconds += self.ctx.cluster.task_overhead_seconds
        attempt = task.attempt
        if task.executor is self.driver:
            _, end = self.driver.cpu.reserve(
                self.sim.now, seconds * self.driver.cpu.bandwidth)
            self.sim.schedule_at_fast(
                end, lambda: self._compute_done(task, attempt))
        else:
            self.sim.schedule_fast(seconds,
                                   lambda: self._compute_done(task, attempt))

    def _compute_done(self, task: _SparkTask, attempt: int) -> None:
        if task.attempt != attempt or task.status != _SparkTask.RUNNING:
            return
        executor = task.executor
        if executor is not self.driver and not executor.alive:
            return
        chain = task.chain
        if self.program.is_real():
            records = chain.apply(task.index, task.external_inputs)
            out_bytes = float(len(records) * chain.terminal.record_bytes)
        else:
            records = None
            bytes_in = dict(task.input_bytes_by_parent)
            out_bytes = chain.synthetic_output_bytes(bytes_in)
        task.status = _SparkTask.WRITING
        run = self.runs[chain.name]
        if executor is self.driver:
            self._finish_task(task, attempt, None, out_bytes, records)
        elif run.is_sink:
            # Final results stream to the job sink storage (S3).
            self.net.transfer(
                executor.endpoint, self.engine.sink_endpoint(self),
                out_bytes,
                lambda result: self._sink_written(task, attempt, result,
                                                  out_bytes, records))
        else:
            # Shuffle write: map outputs land on the local disk (§2.2).
            executor.disk.write(
                out_bytes,
                lambda ok: self._local_written(task, attempt, ok, executor,
                                               out_bytes, records))

    def _sink_written(self, task: _SparkTask, attempt: int,
                      result: TransferResult, out_bytes: float,
                      records: Optional[list]) -> None:
        if task.attempt != attempt or task.status != _SparkTask.WRITING:
            return
        if not result.ok:
            return  # evicted mid-write; eviction handler relaunches
        self._finish_task(task, attempt, task.executor, out_bytes, records)

    def _local_written(self, task: _SparkTask, attempt: int, ok: bool,
                       executor: SimExecutor, out_bytes: float,
                       records: Optional[list]) -> None:
        if task.attempt != attempt or task.status != _SparkTask.WRITING:
            return
        if not ok:
            return
        self._finish_task(task, attempt, executor, out_bytes, records)

    def _finish_task(self, task: _SparkTask, attempt: int,
                     executor: Optional[SimExecutor], out_bytes: float,
                     records: Optional[list]) -> None:
        task.status = _SparkTask.DONE
        if self.tracer is not None:
            self.tracer.emit(TaskCommitted(
                time=self.sim.now,
                stage=self._stage_index[task.chain.name],
                task=task.chain.name, index=task.index, attempt=attempt,
                executor=(executor.executor_id if executor is not None
                          else self.driver.executor_id)))
        location = None if executor is self.driver else executor
        output = _Output(location, out_bytes, records)
        self.outputs[task.key] = output
        if executor is not None and executor is not self.driver:
            executor.release_slot()
            self.scheduler.slot_released()
        self.engine.on_output_produced(self, task, output)
        self._notify_waiters(task.key)
        run = self.runs[task.chain.name]
        if all(t.status == _SparkTask.DONE for t in run.tasks):
            if self.tracer is not None and run.trace_open:
                run.trace_open = False
                self.tracer.emit(StageEnd(
                    time=self.sim.now,
                    stage=self._stage_index[run.chain.name],
                    name=run.chain.name))
            for child in self.runs.values():
                self._maybe_start_chain(child)
            self._maybe_job_done()

    def _notify_waiters(self, key: tuple) -> None:
        for waiter in self._waiters.pop(key, []):
            waiter()

    def _maybe_job_done(self) -> None:
        if self.completed:
            return
        for run in self.runs.values():
            if not run.is_sink:
                continue
            if not all(t.status == _SparkTask.DONE for t in run.tasks):
                return
        self.completed = True
        self.jct = self.sim.now
        if self.program.is_real():
            for run in self.runs.values():
                if not run.is_sink:
                    continue
                parts = {}
                for task in run.tasks:
                    output = self.outputs.get(task.key)
                    if output is not None and output.payload is not None:
                        parts[task.index] = output.payload
                self.job_outputs[run.chain.terminal.name] = parts

    # ------------------------------------------------------------------
    # recomputation (the critical chain)

    def _recompute(self, pkey: tuple) -> None:
        """Re-run the task producing ``pkey`` (recursively re-fetching its
        own inputs, which may trigger further recomputations)."""
        chain_name, pidx = pkey
        run = self.runs[chain_name]
        task = run.tasks[pidx]
        if task.status == _SparkTask.DONE:
            output = self.outputs.get(pkey)
            if output is not None and self._output_reachable(output):
                self._notify_waiters(pkey)
                return
            self._trace_relaunch(task, "lineage-recompute")
            if self.tracer is not None and not run.trace_open:
                # A completed stage reopens to re-run the lost producer.
                run.trace_open = True
                self.tracer.emit(StageStart(
                    time=self.sim.now,
                    stage=self._stage_index[run.chain.name],
                    name=run.chain.name))
            task.reset()
            self._submit(task)
        elif task.status == _SparkTask.PENDING:
            self._submit(task)
        # QUEUED/ASSIGNED/RUNNING/WRITING: already in flight.

    # ------------------------------------------------------------------
    # evictions

    def _on_container_lost(self, container: Container,
                           replacement: Optional[Container]) -> None:
        executor = None
        for candidate in self.scheduler.executors:
            if candidate.container is container:
                executor = candidate
                break
        if executor is None:
            return
        self.scheduler.remove_executor(executor)
        # All local state — including local-disk map outputs — is destroyed.
        lost_outputs = []
        for key, output in self.outputs.items():
            if output.executor is executor and not output.checkpointed:
                output.available = False
                lost_outputs.append(key)
        for run in self.runs.values():
            for task in run.tasks:
                if task.executor is executor and task.status in (
                        _SparkTask.ASSIGNED, _SparkTask.RUNNING,
                        _SparkTask.WRITING):
                    self._trace_relaunch(task, "eviction",
                                         cause_ref=container.container_id)
                    task.reset()
                    self._submit(task)
        # Spark's ExecutorLost handling: map outputs lost while their stage
        # is still running are resubmitted right away, overlapping with the
        # remaining tasks; outputs of *completed* stages are recomputed
        # reactively when a consumer's fetch fails.
        for key in lost_outputs:
            chain_name, _ = key
            run = self.runs[chain_name]
            if not all(t.status == _SparkTask.DONE for t in run.tasks):
                self._recompute(key)


class SparkEngine(EngineBase):
    """Spark 2.0.0: lineage recomputation, no checkpointing.

    ``abort_on_fetch_failure`` selects the fetch-failure semantics: True
    (default) fails the whole task attempt, as Spark's FetchFailed handling
    does; False keeps fetched partitions and re-pulls only the lost ones
    (an optimistic variant, used as an ablation).
    """

    name = "spark"

    def __init__(self, abort_on_fetch_failure: bool = True) -> None:
        self.abort_on_fetch_failure = abort_on_fetch_failure

    def reserved_executor_count(self, cluster: ClusterConfig) -> int:
        """Spark runs executors on the reserved containers too (§5.1.2)."""
        return cluster.num_reserved

    def sink_endpoint(self, master: SparkMaster):
        return master.ctx.input_store._endpoint

    def fetch_output(self, master: SparkMaster, task: _SparkTask,
                     attempt: int, edge: Edge, pidx: int,
                     output: _Output) -> None:
        """Pull a parent output from wherever it lives (driver or a peer
        executor's local disk)."""
        src = master.driver.endpoint if output.executor is None \
            else output.executor.endpoint
        if output.executor is not None:
            output.executor.disk.read(transfer_share(edge, output.size))
        master._deliver_edge_fetch(task, attempt, edge, pidx, output, src)

    def on_output_produced(self, master: SparkMaster, task: _SparkTask,
                           output: _Output) -> None:
        """Hook for the checkpointing subclass."""

    # ------------------------------------------------------------------
    # EngineBase plumbing

    def _make_master(self, ctx: SimContext, program: Program) -> SparkMaster:
        return SparkMaster(ctx, program, self)

    def _start(self, ctx: SimContext, program: Program) -> SparkMaster:
        master = self._make_master(ctx, program)
        master.start()
        return master

    def _is_done(self, master: SparkMaster) -> bool:
        return master.completed

    def _finish(self, ctx: SimContext, program: Program,
                master: SparkMaster,
                time_limit: Optional[float]) -> JobResult:
        completed = master.completed
        if completed:
            jct = master.jct
        else:
            jct = time_limit if time_limit is not None else ctx.sim.now
        original = sum(run.chain.parallelism for run in master.runs.values())
        return JobResult(
            engine=self.name,
            workload=program.name,
            completed=completed,
            jct_seconds=float(jct if jct is not None else ctx.sim.now),
            original_tasks=original,
            launched_tasks=ctx.tasks_launched,
            evictions=ctx.rm.evictions,
            bytes_input_read=ctx.input_store.bytes_read,
            bytes_shuffled=ctx.bytes_shuffled,
            bytes_pushed=0,
            bytes_checkpointed=ctx.bytes_checkpointed,
            outputs=master.job_outputs if program.is_real() else None,
            extras={"stages": len(master.chains)},
        )
