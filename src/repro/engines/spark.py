"""Spark 2.0.0 baseline (§5.1.2).

Models the execution semantics that drive the paper's Spark numbers:

* the logical DAG is pipelined into stages cut at wide (shuffle) edges;
  parallelism-1 operators (model creation/update in MLR) run on the
  never-evicted driver, matching MLlib's collect-to-driver aggregation;
* tasks run on executors placed on *both* transient and reserved containers;
* map outputs are preserved on the producing executor's local disk and
  pulled by the consuming tasks (pull-based shuffle);
* an eviction destroys the container's local map outputs; a consumer's
  fetch failure triggers recomputation of the missing parent tasks, which
  recursively triggers their parents — the cascading critical chain (§2.2).

The attempt lifecycle, fetch barrier, and output registry come from
:mod:`repro.core.exec`; this module adds Spark's policy: local-disk shuffle
writes, lazy pull, and lineage recomputation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cluster.network import TransferResult
from repro.cluster.resources import Container, ContainerKind
from repro.core.compiler.fusion import FusedOperator, fuse_operators
from repro.core.exec import (DelayedRefetch, ImmediateRetry, OutputRecord,
                             TaskAttempt, TaskState)
from repro.core.runtime.cache import LruCache
from repro.core.runtime.scheduler import RoundRobinPolicy
from repro.dataflow.dag import (DependencyType, Edge, source_indices,
                                transfer_share)
from repro.engines.base import (ClusterConfig, EngineBase, MasterBase,
                                Program, SimContext, SimExecutor)
from repro.obs.events import StageEnd, StageStart, TaskCommitted

__all__ = ["SparkEngine", "SparkMaster", "transfer_share"]


class _SparkTask(TaskAttempt):
    def __init__(self, chain: FusedOperator, index: int,
                 table=None) -> None:
        super().__init__(table)
        self.chain = chain
        self.index = index
        self.master: Optional["SparkMaster"] = None

    @property
    def key(self) -> tuple:
        return (self.chain.name, self.index)

    def assign(self, executor: SimExecutor) -> None:
        self.master._task_assigned(self, executor)


class _ChainRun:
    def __init__(self, chain: FusedOperator, on_driver: bool,
                 is_sink: bool, table=None) -> None:
        self.chain = chain
        self.on_driver = on_driver
        self.is_sink = is_sink
        self.started = False
        self.trace_open = False   # StageStart emitted, StageEnd pending
        self.tasks = [_SparkTask(chain, i, table)
                      for i in range(chain.parallelism)]


class SparkMaster(MasterBase):
    """Drives one Spark job on the shared simulator substrate."""

    def __init__(self, ctx: SimContext, program: Program,
                 engine: "SparkEngine") -> None:
        super().__init__(
            ctx, scheduling_policy=RoundRobinPolicy(),
            retry_policy=(ImmediateRetry() if engine.abort_on_fetch_failure
                          else DelayedRefetch()))
        self.program = program
        self.engine = engine
        dag = program.dag
        self.dag = dag
        self.chains = fuse_operators(dag, dag.operators,
                                     require_same_placement=False)
        self._chain_of_op = {op.name: c for c in self.chains for op in c.ops}
        self.runs: dict[str, _ChainRun] = {}
        sink_names = {op.name for op in dag.sinks()}
        for chain in self.chains:
            on_driver = chain.parallelism == 1
            is_sink = chain.terminal.name in sink_names
            self.runs[chain.name] = _ChainRun(chain, on_driver, is_sink,
                                              table=self.attempts)
        self._stage_index = {chain.name: i
                             for i, chain in enumerate(self.chains)}
        self.driver = self._make_driver()
        self.slotless = self.driver
        self.fetch.slotless = self.driver

    # ------------------------------------------------------------------
    # MasterBase policy hooks

    def stage_index_of(self, task: _SparkTask) -> int:
        return self._stage_index[task.chain.name]

    def _resubmit(self, task: _SparkTask) -> None:
        self._submit(task)

    def original_task_count(self) -> int:
        return sum(run.chain.parallelism for run in self.runs.values())

    def result_extras(self) -> dict:
        return {"stages": len(self.chains)}

    # ------------------------------------------------------------------
    # setup

    def _make_driver(self) -> SimExecutor:
        """The Spark driver runs on its own reserved container (§5.2)."""
        container = Container(kind=ContainerKind.RESERVED,
                              spec=self.ctx.cluster.reserved_spec)
        return SimExecutor(container, self.sim, tracer=self.tracer)

    def start(self) -> None:
        self.ctx.rm.on_container(self._on_container)
        self.ctx.rm.on_eviction(self._on_container_lost)
        self.ctx.allocate(self.engine.reserved_executor_count(
            self.ctx.cluster))
        for run in self.runs.values():
            self._maybe_start_chain(run)

    def _on_container(self, container: Container) -> None:
        executor = SimExecutor(container, self.sim, tracer=self.tracer)
        # Broadcast blocks are cached per executor (TorrentBroadcast).
        executor.cache = LruCache(container.spec.memory_bytes * 0.3)
        self.scheduler.add_executor(executor)

    # ------------------------------------------------------------------
    # chain (stage) scheduling

    def _parents_of(self, chain: FusedOperator) -> list[FusedOperator]:
        return [self._chain_of_op[e.src.name]
                for e in chain.external_in_edges()]

    def _maybe_start_chain(self, run: _ChainRun) -> None:
        """Submit a stage once every parent stage has fully completed."""
        if run.started:
            return
        for parent in self._parents_of(run.chain):
            parent_run = self.runs[parent.name]
            if not all(t.status == TaskState.DONE
                       for t in parent_run.tasks):
                return
        run.started = True
        if self.tracer is not None:
            run.trace_open = True
            self.tracer.emit(StageStart(
                time=self.sim.now,
                stage=self._stage_index[run.chain.name],
                name=run.chain.name))
        for task in run.tasks:
            task.master = self
            self._submit(task)

    def _submit(self, task: _SparkTask) -> None:
        if task.status != TaskState.PENDING:
            return
        run = self.runs[task.chain.name]
        task.status = TaskState.QUEUED
        if run.on_driver:
            # Driver-resident work starts immediately (no slot needed).
            self._task_assigned(task, self.driver)
        else:
            self.scheduler.submit(task)

    # ------------------------------------------------------------------
    # task execution

    def _plan_fetches(self, task: _SparkTask,
                      attempt: int) -> tuple[list[Callable[[], None]], int]:
        fetches: list[Callable[[], None]] = []
        count = 0
        chain = task.chain
        if chain.is_source_chain() and chain.head.input_ref is not None:
            fetches.append(lambda: self.fetch.fetch_source(task, attempt))
            count += 1
        specs = task.fetch_specs
        if specs is None:
            specs = task.fetch_specs = [
                (edge, pidx)
                for edge in chain.external_in_edges()
                for pidx in source_indices(edge, task.index)]
        if specs:
            fetches.append(
                lambda: self._fetch_edges(task, attempt, specs))
            count += len(specs)
        return fetches, count

    def _fetch_edges(self, task: _SparkTask, attempt: int,
                     specs: list) -> None:
        """Issue all external-edge fetches of one attempt as a bulk plan:
        the transfers queue on the network's open plan and reserve
        together at commit, sharing one completion callback
        (:meth:`_edge_pull_done`) instead of one closure each."""
        net = self.net
        net.begin_plan()
        try:
            for edge, pidx in specs:
                self._fetch_edge(task, attempt, edge, pidx)
        finally:
            net.commit_plan()

    def _fetch_edge(self, task: _SparkTask, attempt: int, edge: Edge,
                    pidx: int) -> None:
        if task.attempt != attempt or task.status != TaskState.FETCHING:
            return  # stale re-fetch after the task was reset
        producer_chain = self._chain_of_op[edge.src.name]
        pkey = (producer_chain.name, pidx)
        is_broadcast = edge.dep_type is DependencyType.ONE_TO_MANY
        if is_broadcast and task.executor.cache is not None:
            cached = task.executor.cache.get(pkey)
            if cached is not None:
                size, payload = cached
                self.fetch.arrived_routed(task, attempt, edge, pidx, size,
                                          payload)
                return
        output = self.outputs.get(pkey)
        if output is None or not output.reachable():
            # Fetch failure: the parent output is gone — recompute it (the
            # critical chain). Depending on the retry policy either the
            # whole task attempt fails (real Spark's FetchFailed handling)
            # or only this fetch is re-issued once the output is back.
            self.outputs.trace_miss(edge.src.name, pidx)
            if self.fetch.retry.abort_on_miss:
                task.failed_parents.add(pkey)
                self._recompute(pkey)
                self.fetch.broke(task, attempt)
            else:
                self._refetch_later(task, attempt, edge, pidx, pkey)
            return
        if is_broadcast and task.executor.cache is not None:
            # TorrentBroadcast fetches each block once per executor.
            inflight_key = (task.executor.executor_id, pkey)
            if self.fetch.inflight.join(inflight_key,
                                        (task, attempt, edge, pidx)):
                return
        self.engine.fetch_output(self, task, attempt, edge, pidx, output)

    def _deliver_edge_fetch(self, task: _SparkTask, attempt: int, edge: Edge,
                            pidx: int, output: OutputRecord,
                            src_endpoint: Any) -> None:
        """Pull one parent output over the network. Shuffle (many-to-many)
        fetches only move this task's partition of the output."""
        producer_chain = self._chain_of_op[edge.src.name]
        pkey = (producer_chain.name, pidx)
        moved = transfer_share(edge, output.size)
        coalesced = (edge.dep_type is DependencyType.ONE_TO_MANY
                     and task.executor.cache is not None)
        inflight_key = (task.executor.executor_id, pkey)
        tag = (task, attempt, edge, pidx, output, moved, pkey, coalesced,
               inflight_key)
        if output.executor is task.executor:
            self._edge_pull_done(
                tag, TransferResult(True, self.sim.now, int(moved)))
            return
        net = self.net
        if net.plan_open:
            net.plan_transfer(src_endpoint, task.executor.endpoint, moved,
                              tag, self._edge_pull_done)
        else:
            net.transfer(src_endpoint, task.executor.endpoint, moved,
                         lambda result: self._edge_pull_done(tag, result))

    def _edge_pull_done(self, tag: tuple, result: TransferResult) -> None:
        """Shared completion callback for edge pulls; ``tag`` carries the
        request-time state the per-transfer closure used to capture."""
        (task, attempt, edge, pidx, output, moved, pkey, coalesced,
         inflight_key) = tag
        waiters = (self.fetch.inflight.drain(inflight_key)
                   if coalesced else [])
        if not result.ok:
            if task.attempt == attempt:
                if not output.reachable():
                    # Source died mid-transfer.
                    output.available = output.checkpointed
                    self.outputs.trace_miss(edge.src.name, pidx)
                    if self.fetch.retry.abort_on_miss:
                        task.failed_parents.add(pkey)
                        self._recompute(pkey)
                        self.fetch.broke(task, attempt)
                    else:
                        self._refetch_later(task, attempt, edge, pidx,
                                            pkey)
                # else: we died; the eviction handler reset the task.
            for other, a2, e2, p2 in waiters:
                self._fetch_edge(other, a2, e2, p2)
            return
        self.ctx.bytes_shuffled += int(moved)
        if coalesced:
            task.executor.cache.put(pkey, output.size, output.payload)
        if task.attempt == attempt:
            self.fetch.arrived_routed(task, attempt, edge, pidx,
                                      output.size, output.payload)
        for other, a2, e2, p2 in waiters:
            self.fetch.arrived_routed(other, a2, e2, p2, output.size,
                                      output.payload)

    def _after_abort(self, task: _SparkTask, failed_parents: set) -> None:
        # Re-check the parents that broke this attempt *now*: any of them
        # may have been recomputed while the other fetches were draining.
        missing = []
        # Sorted: set iteration is hash-seeded per process, and recompute
        # submission order steers scheduling — keep runs reproducible.
        for pkey in sorted(failed_parents):
            if not self.outputs.reachable(pkey):
                missing.append(pkey)
        if not missing:
            self._submit(task)
            return
        for pkey in missing:
            self.outputs.wait(pkey, lambda: self._retry_task(task))
            self._recompute(pkey)

    def _retry_task(self, task: _SparkTask) -> None:
        if task.status == TaskState.PENDING:
            self._submit(task)

    def _refetch_later(self, task: _SparkTask, attempt: int, edge: Edge,
                       pidx: int, pkey: tuple) -> None:
        """Recompute a lost parent output, then re-issue one fetch.

        The attempt's other fetched partitions are kept, so one eviction does
        not force re-pulling the whole shuffle input (real Spark retries
        batch lost map outputs similarly at stage granularity).
        """
        self.outputs.wait(pkey,
                          lambda: self._fetch_edge(task, attempt, edge, pidx))
        self._recompute(pkey)

    def _schedule_compute(self, task: _SparkTask, seconds: float,
                          callback: Callable[[], None]) -> None:
        if task.executor is self.driver:
            # Driver work serializes through the driver's single CPU.
            _, end = self.driver.cpu.reserve(
                self.sim.now, seconds * self.driver.cpu.bandwidth)
            self.sim.schedule_at_fast(end, callback)
        else:
            self.sim.schedule_fast(seconds, callback)

    def _compute_done(self, task: _SparkTask, attempt: int) -> None:
        if task.attempt != attempt or task.status != TaskState.COMPUTING:
            return
        executor = task.executor
        if executor is not self.driver and not executor.alive:
            return
        chain = task.chain
        if self.program.is_real():
            records = chain.apply(task.index, task.external_inputs)
            out_bytes = float(len(records) * chain.terminal.record_bytes)
        else:
            records = None
            bytes_in = dict(task.input_bytes_by_parent)
            out_bytes = chain.synthetic_output_bytes(bytes_in)
        task.status = TaskState.DELIVERING
        run = self.runs[chain.name]
        if executor is self.driver:
            self._finish_task(task, attempt, None, out_bytes, records)
        elif run.is_sink:
            # Final results stream to the job sink storage (S3).
            self.net.transfer(
                executor.endpoint, self.engine.sink_endpoint(self),
                out_bytes,
                lambda result: self._sink_written(task, attempt, result,
                                                  out_bytes, records))
        else:
            # Shuffle write: map outputs land on the local disk (§2.2).
            executor.disk.write(
                out_bytes,
                lambda ok: self._local_written(task, attempt, ok, executor,
                                               out_bytes, records))

    def _sink_written(self, task: _SparkTask, attempt: int,
                      result: TransferResult, out_bytes: float,
                      records: Optional[list]) -> None:
        if task.attempt != attempt or task.status != TaskState.DELIVERING:
            return
        if not result.ok:
            return  # evicted mid-write; eviction handler relaunches
        self._finish_task(task, attempt, task.executor, out_bytes, records)

    def _local_written(self, task: _SparkTask, attempt: int, ok: bool,
                       executor: SimExecutor, out_bytes: float,
                       records: Optional[list]) -> None:
        if task.attempt != attempt or task.status != TaskState.DELIVERING:
            return
        if not ok:
            return
        self._finish_task(task, attempt, executor, out_bytes, records)

    def _finish_task(self, task: _SparkTask, attempt: int,
                     executor: Optional[SimExecutor], out_bytes: float,
                     records: Optional[list]) -> None:
        task.status = TaskState.DONE
        if self.tracer is not None:
            self.tracer.emit(TaskCommitted(
                time=self.sim.now,
                stage=self._stage_index[task.chain.name],
                task=task.chain.name, index=task.index, attempt=attempt,
                executor=(executor.executor_id if executor is not None
                          else self.driver.executor_id)))
        location = None if executor is self.driver else executor
        output = self.outputs.put(task.key, location, out_bytes, records)
        if executor is not None and executor is not self.driver:
            executor.release_slot()
            self.scheduler.slot_released()
        self.engine.on_output_produced(self, task, output)
        self.outputs.notify(task.key)
        run = self.runs[task.chain.name]
        if all(t.status == TaskState.DONE for t in run.tasks):
            if self.tracer is not None and run.trace_open:
                run.trace_open = False
                self.tracer.emit(StageEnd(
                    time=self.sim.now,
                    stage=self._stage_index[run.chain.name],
                    name=run.chain.name))
            for child in self.runs.values():
                self._maybe_start_chain(child)
            self._maybe_job_done()

    def _maybe_job_done(self) -> None:
        if self.completed:
            return
        for run in self.runs.values():
            if not run.is_sink:
                continue
            if not all(t.status == TaskState.DONE for t in run.tasks):
                return
        self.completed = True
        self.jct = self.sim.now
        if self.program.is_real():
            for run in self.runs.values():
                if not run.is_sink:
                    continue
                parts = {}
                for task in run.tasks:
                    output = self.outputs.get(task.key)
                    if output is not None and output.payload is not None:
                        parts[task.index] = output.payload
                self.job_outputs[run.chain.terminal.name] = parts

    # ------------------------------------------------------------------
    # recomputation (the critical chain)

    def _recompute(self, pkey: tuple) -> None:
        """Re-run the task producing ``pkey`` (recursively re-fetching its
        own inputs, which may trigger further recomputations)."""
        chain_name, pidx = pkey
        run = self.runs[chain_name]
        task = run.tasks[pidx]
        if task.status == TaskState.DONE:
            if self.outputs.reachable(pkey):
                self.outputs.notify(pkey)
                return
            self._trace_relaunch(task, "lineage-recompute")
            if self.tracer is not None and not run.trace_open:
                # A completed stage reopens to re-run the lost producer.
                run.trace_open = True
                self.tracer.emit(StageStart(
                    time=self.sim.now,
                    stage=self._stage_index[run.chain.name],
                    name=run.chain.name))
            task.reset()
            self._submit(task)
        elif task.status == TaskState.PENDING:
            self._submit(task)
        # QUEUED/FETCHING/COMPUTING/DELIVERING: already in flight.

    # ------------------------------------------------------------------
    # evictions

    def _on_container_lost(self, container: Container,
                           replacement: Optional[Container]) -> None:
        executor = self._find_executor(container)
        if executor is None:
            return
        self.scheduler.remove_executor(executor)
        # All local state — including local-disk map outputs — is destroyed.
        lost_outputs = self.outputs.mark_executor_lost(executor)
        # One table sweep replaces the per-run loops: rows come back in
        # task-creation order, which is runs-in-submission-order — the
        # same order the loops produced.
        self._relaunch_lost(executor, "eviction",
                            cause_ref=container.container_id)
        # Spark's ExecutorLost handling: map outputs lost while their stage
        # is still running are resubmitted right away, overlapping with the
        # remaining tasks; outputs of *completed* stages are recomputed
        # reactively when a consumer's fetch fails.
        for key in lost_outputs:
            chain_name, _ = key
            run = self.runs[chain_name]
            if not all(t.status == TaskState.DONE for t in run.tasks):
                self._recompute(key)


class SparkEngine(EngineBase):
    """Spark 2.0.0: lineage recomputation, no checkpointing.

    ``abort_on_fetch_failure`` selects the fetch-failure semantics: True
    (default) fails the whole task attempt, as Spark's FetchFailed handling
    does; False keeps fetched partitions and re-pulls only the lost ones
    (an optimistic variant, used as an ablation).
    """

    name = "spark"

    def __init__(self, abort_on_fetch_failure: bool = True) -> None:
        self.abort_on_fetch_failure = abort_on_fetch_failure

    def reserved_executor_count(self, cluster: ClusterConfig) -> int:
        """Spark runs executors on the reserved containers too (§5.1.2)."""
        return cluster.num_reserved

    def sink_endpoint(self, master: SparkMaster):
        return master.ctx.input_store._endpoint

    def fetch_output(self, master: SparkMaster, task: _SparkTask,
                     attempt: int, edge: Edge, pidx: int,
                     output: OutputRecord) -> None:
        """Pull a parent output from wherever it lives (driver or a peer
        executor's local disk)."""
        src = master.driver.endpoint if output.executor is None \
            else output.executor.endpoint
        if output.executor is not None:
            output.executor.disk.read(transfer_share(edge, output.size))
        master._deliver_edge_fetch(task, attempt, edge, pidx, output, src)

    def on_output_produced(self, master: SparkMaster, task: _SparkTask,
                           output: OutputRecord) -> None:
        """Hook for the checkpointing subclass."""

    # ------------------------------------------------------------------
    # EngineBase plumbing

    def _make_master(self, ctx: SimContext, program: Program) -> SparkMaster:
        return SparkMaster(ctx, program, self)

    def _start(self, ctx: SimContext, program: Program) -> SparkMaster:
        master = self._make_master(ctx, program)
        master.start()
        return master
