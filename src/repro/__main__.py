"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro fig5 [--scale 0.25] [--seed 11]
    python -m repro fig2 --trace traces/
    python -m repro sweep --workload mr --averaged --workers 4 --cache .cache
    python -m repro mtsweep --policy fair --load 0.8 [--eviction high]
    python -m repro mtsweep --reserve fixed,elastic --load 0.8,1.1
    python -m repro mtsweep --workers 8 --speculate on   # async dispatch
    python -m repro psweep [--pworkloads fanout] [--out BENCH.json]
    python -m repro fig9xl [--fleet 10000] [--hours 1.75]
    python -m repro profile fig7 [--profile-limit 40] [--profile-out f.pstats]
    python -m repro profile mtsweep --policy fair --load 0.8 --jobs 20
    python -m repro mtsweep --job-dir /shared/jobs     # distributed dispatch
    python -m repro sweep-worker /shared/jobs [--once]
    python -m repro all

Each experiment prints the same rows the paper reports; see EXPERIMENTS.md
for the paper-vs-measured comparison. With ``--trace DIR`` every simulated
job additionally records a structured event trace (see docs/OBSERVABILITY.md)
and dumps one ``<label>.jsonl`` plus one Chrome/Perfetto-loadable
``<label>.trace.json`` per run into DIR.

Every sweep-style experiment (fig5-9, ablations, sweep) accepts
``--workers N`` to fan independent simulations out over worker processes
(one warm pool per invocation) and ``--cache DIR`` to memoize completed
runs on disk (see docs/PERFORMANCE.md); results are bit-identical to the
serial path. ``--job-dir DIR`` switches dispatch to the distributed
jobfile backend: chunks are published under DIR and any number of
``python -m repro sweep-worker DIR`` processes (on any machine sharing
DIR) pick them up; the submitting process drains the queue itself, so
workers accelerate but are never required. A wall-clock timing summary
for every runner-backed experiment goes to stderr.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable

from repro.obs.tracer import collecting

from repro.bench import (SweepRunner, ablation_aggregation_limits,
                         ablation_fetch_semantics, ablation_optimizations,
                         averaged_eviction_sweep, eviction_rate_sweep,
                         fig1_lifetime_cdfs, fig2_recovery_costs, fig5_als,
                         fig6_mlr, fig7_mr, fig8_reserved_sweep,
                         fig9_scalability, fig9xl_stress, render_cdf_series,
                         render_table, tab1_lifetime_percentiles,
                         tab2_collected_memory)
from repro.trace import EvictionRate

SWEEP_HEADERS = ["workload", "eviction", "engine", "JCT (m)", "completed",
                 "relaunched", "evictions"]
AVERAGED_HEADERS = ["workload", "eviction", "engine", "JCT (m)",
                    "completed"]


def _runner_for(args) -> SweepRunner:
    if args.job_dir is not None:
        return SweepRunner(workers=args.workers, cache_dir=args.cache,
                           backend="jobfile", job_dir=args.job_dir)
    # Speculative dispatch drives the pool through the futures API with
    # many small submissions, so bring workers up lazily and only as many
    # as the hardware can actually run (see docs/PERFORMANCE.md).
    scaling = ("elastic" if getattr(args, "speculate", "off") == "on"
               else "eager")
    return SweepRunner(workers=args.workers, cache_dir=args.cache,
                       pool_scaling=scaling)


def _finish_runner(runner: SweepRunner) -> None:
    """Release the warm pool and report wall-clock timing on stderr
    (stdout carries the tables; the ``[runner]`` stats line stays there
    for compatibility)."""
    stats = runner.stats
    print(f"[runner:timing] {stats.wall_seconds:.2f}s wall, "
          f"{stats.mean_spec_seconds * 1e3:.1f} ms/spec, "
          f"{stats.pool_startup_seconds:.2f}s pool startup "
          f"({stats.pools_started} pool(s), {stats.batches} batch(es), "
          f"{stats.chunks} chunk(s))", file=sys.stderr)
    runner.close()


def _sweep(fn: Callable, title: str, args, **kwargs) -> str:
    runner = _runner_for(args)
    try:
        rows = fn(runner=runner, **kwargs)
    finally:
        _finish_runner(runner)
    table = render_table(SWEEP_HEADERS, [r.as_tuple() for r in rows],
                         title=title)
    return f"{table}\n[runner] {runner.stats}"


def _run_fig1(args) -> str:
    return render_cdf_series(fig1_lifetime_cdfs(seed=args.seed),
                             title="Figure 1: lifetime CDFs")


def _run_tab1(args) -> str:
    return render_table(["margin", "percentile", "measured (min)",
                         "paper (min)"],
                        tab1_lifetime_percentiles(seed=args.seed),
                        title="Table 1: lifetime percentiles")


def _run_tab2(args) -> str:
    return render_table(["margin", "measured", "paper"],
                        tab2_collected_memory(seed=args.seed),
                        title="Table 2: collected idle memory")


def _run_fig2(args) -> str:
    return render_table(
        ["engine", "relaunched", "checkpointed (MB)", "JCT (m)",
         "baseline JCT (m)"], fig2_recovery_costs(seed=args.seed),
        title="Figure 2: recovery costs")


def _run_fig8(args) -> str:
    parts = []
    for workload in ("als", "mlr", "mr"):
        parts.append(_sweep(fig8_reserved_sweep,
                            f"Figure 8({workload}): reserved sweep", args,
                            workload=workload, scale=args.scale,
                            seed=args.seed))
    return "\n\n".join(parts)


def _run_ablations(args) -> str:
    runner = _runner_for(args)
    try:
        parts = [
            render_table(["variant", "JCT (m)", "pushed (GB)",
                          "input read (GB)", "shuffled (GB)"],
                         ablation_optimizations(seed=args.seed,
                                                runner=runner),
                         title="Ablation: Pado optimizations (MLR, high)"),
            render_table(["max merged tasks", "JCT (m)", "pushed (GB)",
                          "relaunched"],
                         ablation_aggregation_limits(seed=args.seed,
                                                     runner=runner),
                         title="Ablation: aggregation escape limits"),
            render_table(["semantics", "JCT (m)", "relaunched",
                          "shuffled (GB)"],
                         ablation_fetch_semantics(seed=args.seed,
                                                  runner=runner),
                         title="Ablation: Spark fetch-failure semantics"),
            f"[runner] {runner.stats}",
        ]
    finally:
        _finish_runner(runner)
    return "\n\n".join(parts)


def _parse_csv(text, convert=str) -> list:
    return [convert(item.strip()) for item in text.split(",") if item.strip()]


def _run_mtsweep(args) -> str:
    """Multi-tenant cluster: inter-job policies under continuous arrivals
    (see docs/MULTITENANCY.md)."""
    import json

    from repro.bench.multitenant import (SWEEP_POLICIES, cell_summary,
                                         jct_table, make_cell_config,
                                         run_multitenant_cell)
    runner = _runner_for(args)
    policies = SWEEP_POLICIES if args.policy == "all" else (args.policy,)
    loads = _parse_csv(args.load, float)
    evictions = _parse_csv(args.eviction)
    reserves = _parse_csv(args.reserve)
    parts = []
    summaries = []
    try:
        for load in loads:
            for eviction in evictions:
                for policy in policies:
                    for reserve in reserves:
                        config = make_cell_config(policy, load, eviction,
                                                  num_jobs=args.jobs,
                                                  seed=args.seed,
                                                  reserve=reserve)
                        result = run_multitenant_cell(
                            config, runner=runner,
                            speculate=args.speculate == "on")
                        summaries.append(cell_summary(config, result))
                        parts.append(jct_table(
                            result,
                            title=(f"Multi-tenant JCT (minutes): "
                                   f"policy={policy} load={load} "
                                   f"eviction={eviction} reserve={reserve} "
                                   f"jobs={args.jobs} seed={args.seed}")))
    finally:
        _finish_runner(runner)
    if args.out is not None:
        out = pathlib.Path(args.out)
        payload = {"cells": summaries, "runner": runner.stats.to_dict()}
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        parts.append(f"[mtsweep] {len(summaries)} cell summaries -> {out}")
    parts.append(f"[runner] {runner.stats}")
    return "\n\n".join(parts)


def _run_psweep(args) -> str:
    """Prediction sweep: static vs predictive Pado under correlated
    eviction waves (see docs/PREDICTION.md)."""
    import json

    from repro.bench.prediction import (SWEEP_WORKLOADS, prediction_sweep,
                                        prediction_table)
    runner = _runner_for(args)
    workloads = (_parse_csv(args.pworkloads) if args.pworkloads
                 else SWEEP_WORKLOADS)
    try:
        rows = prediction_sweep(workloads=workloads, scale=args.scale,
                                seed=args.seed, runner=runner,
                                speculate=args.speculate == "on")
    finally:
        _finish_runner(runner)
    parts = [prediction_table(
        rows, title=(f"Prediction sweep: static vs predictive Pado "
                     f"(seed={args.seed})"))]
    if args.out is not None:
        out = pathlib.Path(args.out)
        payload = {"rows": rows, "runner": runner.stats.to_dict()}
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        parts.append(f"[psweep] {len(rows)} cell rows -> {out}")
    parts.append(f"[runner] {runner.stats}")
    return "\n\n".join(parts)


def _run_fig9xl(args) -> str:
    """fig9 at 100× the paper's cluster: a 10k-container fleet churning
    under the high eviction rate with a continuous synthetic shuffle
    (>1M simulator events at the default shape)."""
    import time

    fleet = args.fleet
    num_transient = round(fleet * 8 / 9)   # the paper's fixed 8:1 ratio
    num_reserved = fleet - num_transient
    start = time.perf_counter()
    stats = fig9xl_stress(num_reserved=num_reserved,
                          num_transient=num_transient,
                          sim_hours=args.hours, seed=args.seed)
    wall = time.perf_counter() - start
    table = render_table(
        ["containers", "simulated", "events", "evictions", "transfers",
         "completed", "failed"], [stats.as_tuple()],
        title="fig9xl: array-core stress at 100x the paper's cluster")
    rate = stats.events / wall if wall else float("inf")
    return (f"{table}\n[fig9xl] wall {wall:.2f}s, "
            f"{rate:,.0f} events/s")


def _run_sweep(args) -> str:
    """The generic runner-backed sweep: engines x rates (x seeds)."""
    import dataclasses
    import json

    runner = _runner_for(args)
    kwargs = {"scale": args.scale, "runner": runner}
    if args.rates:
        kwargs["rates"] = tuple(EvictionRate(rate)
                                for rate in _parse_csv(args.rates))
    if args.engines:
        kwargs["engines"] = _parse_csv(args.engines)
    seeds = _parse_csv(args.seeds, int) if args.seeds else None
    try:
        if args.averaged:
            if seeds:
                kwargs["seeds"] = tuple(seeds)
            rows = averaged_eviction_sweep(args.workload, **kwargs)
            table = render_table(
                AVERAGED_HEADERS, [row.as_tuple() for row in rows],
                title=f"Averaged eviction sweep ({args.workload})")
        else:
            kwargs["seed"] = seeds[0] if seeds else args.seed
            rows = eviction_rate_sweep(args.workload, **kwargs)
            table = render_table(
                SWEEP_HEADERS, [row.as_tuple() for row in rows],
                title=f"Eviction sweep ({args.workload})")
    finally:
        _finish_runner(runner)
    output = f"{table}\n[runner] {runner.stats}"
    if args.out is not None:
        out = pathlib.Path(args.out)
        payload = {"rows": [dataclasses.asdict(row) for row in rows],
                   "runner": runner.stats.to_dict()}
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        output += f"\n[sweep] {len(rows)} rows -> {out}"
    return output


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig1": ("Figure 1: lifetime CDFs per safety margin", _run_fig1),
    "tab1": ("Table 1: lifetime percentiles", _run_tab1),
    "tab2": ("Table 2: collected idle memory", _run_tab2),
    "fig2": ("Figure 2: recovery cost of an eviction burst", _run_fig2),
    "fig5": ("Figure 5: ALS vs eviction rate",
             lambda args: _sweep(fig5_als, "Figure 5: ALS", args,
                                 scale=args.scale, seed=args.seed)),
    "fig6": ("Figure 6: MLR vs eviction rate",
             lambda args: _sweep(fig6_mlr, "Figure 6: MLR", args,
                                 scale=args.scale, seed=args.seed)),
    "fig7": ("Figure 7: MR vs eviction rate",
             lambda args: _sweep(fig7_mr, "Figure 7: MR", args,
                                 scale=args.scale, seed=args.seed)),
    "fig8": ("Figure 8: reserved-container sweep", _run_fig8),
    "fig9": ("Figure 9: scalability at 8:1",
             lambda args: _sweep(fig9_scalability, "Figure 9", args,
                                 scale=args.scale, seed=args.seed)),
    "ablations": ("Ablations of §3.2.7 design choices", _run_ablations),
    "sweep": ("Custom eviction sweep (--workload/--rates/--engines/"
              "--seeds/--averaged)", _run_sweep),
    "mtsweep": ("Multi-tenant cluster: JCT distributions per inter-job "
                "policy (--policy/--load/--eviction/--jobs/--reserve)",
                _run_mtsweep),
    "psweep": ("Prediction sweep: static vs predictive Pado under "
               "correlated waves (--pworkloads/--out)", _run_psweep),
    "fig9xl": ("Array-core stress: 10k containers, >1M events "
               "(--fleet/--hours)", _run_fig9xl),
}


def _run_profiled(name: str, args) -> int:
    """cProfile one experiment and print the hottest functions.

    The engine hot path (simulator loop, network drain, fetch barrier) is
    pure Python, so cumulative-time profiles point straight at regressions;
    see docs/PERFORMANCE.md for the workflow.
    """
    import cProfile
    import pstats

    if args.workers:
        # Worker subprocesses would run the simulations outside the
        # profiler and the profile would show only IPC overhead.
        print(f"[profile] forcing --workers 0 (was {args.workers}): "
              f"profiled runs must stay in-process")
        args.workers = 0
    _, runner = EXPERIMENTS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        output = runner(args)
    finally:
        profiler.disable()
    print(output)
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.profile_sort)
    stats.print_stats(args.profile_limit)
    if args.profile_out is not None:
        stats.dump_stats(args.profile_out)
        print(f"[profile] stats written to {args.profile_out} "
              f"(inspect with python -m pstats)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Pado paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list", "all",
                                                       "profile",
                                                       "sweep-worker"],
                        help="experiment id, 'list', 'all', 'profile', or "
                             "'sweep-worker'")
    parser.add_argument("target", nargs="?", default=None,
                        help="with 'profile': the experiment to profile "
                             "under cProfile; with 'sweep-worker': the "
                             "shared job directory to serve")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale override (default: bench "
                             "scales)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="record per-run event traces and write "
                             "JSONL + Chrome trace files into DIR")
    parser.add_argument("--workers", type=int, default=0,
                        help="fan independent simulations out over N "
                             "worker processes (0 = serial)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="memoize completed simulations in DIR; "
                             "re-runs only simulate what changed")
    parser.add_argument("--job-dir", metavar="DIR", default=None,
                        help="dispatch simulations through the distributed "
                             "jobfile backend rooted at DIR (pair with "
                             "'sweep-worker DIR' processes; see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="for sweep/mtsweep/psweep: also write rows "
                             "plus runner timing as JSON to FILE (how the "
                             "committed benchmarks/BENCH_*.json sweeps are "
                             "regenerated)")
    parser.add_argument("--speculate", default="off", choices=("on", "off"),
                        help="for mtsweep/psweep: pre-execute predicted "
                             "dispatches on idle workers between outer-loop "
                             "instants (results are bit-identical; see "
                             "docs/PERFORMANCE.md)")
    sweep_args = parser.add_argument_group(
        "sweep", "options for the 'sweep' experiment")
    sweep_args.add_argument("--workload", default="mr",
                            choices=("als", "mlr", "mr", "fanout"))
    sweep_args.add_argument("--rates", default=None,
                            help="comma-separated eviction rates "
                                 "(none,low,medium,high)")
    sweep_args.add_argument("--engines", default=None,
                            help="comma-separated engine names "
                                 "(pado,spark,spark-checkpoint)")
    sweep_args.add_argument("--seeds", default=None,
                            help="comma-separated seeds (with --averaged: "
                                 "the repetition protocol seeds)")
    sweep_args.add_argument("--averaged", action="store_true",
                            help="run the §5.1.3 repetition protocol and "
                                 "report mean ± std")
    mt_args = parser.add_argument_group(
        "mtsweep", "options for the 'mtsweep' experiment")
    mt_args.add_argument("--policy", default="all",
                         choices=("fifo", "fair", "quota", "all"),
                         help="inter-job scheduling policy (default: run "
                              "all three)")
    mt_args.add_argument("--load", default="0.8",
                         help="offered-load factor(s), comma-separated: "
                              "nominal transient demand over transient "
                              "capacity")
    mt_args.add_argument("--eviction", default="high",
                         help="correlated eviction-wave regime(s), "
                              "comma-separated (none,low,medium,high)")
    mt_args.add_argument("--jobs", type=int, default=60,
                         help="number of arriving jobs per cell")
    mt_args.add_argument("--reserve", default="fixed",
                         help="reserved-pool sizing mode(s), "
                              "comma-separated (fixed,elastic)")
    p_args = parser.add_argument_group(
        "psweep", "options for the 'psweep' experiment")
    p_args.add_argument("--pworkloads", default=None,
                        help="comma-separated psweep workloads "
                             "(default: mlr,mr,fanout)")
    xl_args = parser.add_argument_group(
        "fig9xl", "options for the 'fig9xl' experiment")
    xl_args.add_argument("--fleet", type=int, default=10_000,
                         help="total containers, split 8:1 "
                              "transient:reserved (default: 10000)")
    xl_args.add_argument("--hours", type=float, default=1.75,
                         help="simulated hours of churn + shuffle "
                              "(default: 1.75, >1M events)")
    worker_args = parser.add_argument_group(
        "sweep-worker", "options for the 'sweep-worker' mode")
    worker_args.add_argument("--once", action="store_true",
                             help="drain the queue and exit instead of "
                                  "polling forever")
    worker_args.add_argument("--claim-timeout", type=float, default=120.0,
                             help="seconds before a stalled claim is "
                                  "assumed crashed and re-queued "
                                  "(default: 120)")
    profile_args = parser.add_argument_group(
        "profile", "options for the 'profile' mode")
    profile_args.add_argument("--profile-sort", default="cumulative",
                              help="pstats sort key (default: cumulative)")
    profile_args.add_argument("--profile-limit", type=int, default=30,
                              help="number of stat lines to print")
    profile_args.add_argument("--profile-out", metavar="FILE", default=None,
                              help="also dump raw pstats data to FILE")
    args = parser.parse_args(argv)

    if args.experiment == "sweep-worker":
        if args.target is None:
            parser.error("sweep-worker needs a job directory to serve")
        from repro.bench.runner import sweep_worker_loop
        completed = sweep_worker_loop(args.target, cache_dir=args.cache,
                                      once=args.once,
                                      claim_timeout=args.claim_timeout)
        print(f"[sweep-worker] {completed} chunk(s) completed")
        return 0
    if args.experiment == "profile":
        if args.target not in EXPERIMENTS:
            parser.error("profile needs an experiment to profile, one of: "
                         + ", ".join(sorted(EXPERIMENTS)))
        return _run_profiled(args.target, args)
    if args.target is not None:
        parser.error("a second positional is only valid with 'profile' "
                     "or 'sweep-worker'")
    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"{name:10s} {description}")
        return 0
    if args.experiment == "all":
        # 'sweep'/'mtsweep'/'psweep' are parameterized and 'fig9xl' is a
        # stress cell, not paper artifacts; 'all' regenerates the paper
        # set only.
        targets = sorted(name for name in EXPERIMENTS
                         if name not in ("sweep", "mtsweep", "psweep",
                                         "fig9xl"))
    else:
        targets = [args.experiment]
    for name in targets:
        _, runner = EXPERIMENTS[name]
        if args.trace is None:
            print(runner(args))
        else:
            with collecting() as collector:
                print(runner(args))
            trace_dir = pathlib.Path(args.trace) / name
            written = collector.dump(trace_dir)
            print(f"[trace] {len(collector.runs)} run(s) -> "
                  f"{len(written)} file(s) under {trace_dir}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
