"""Synthetic dataset generators for the real-data workload variants.

The paper's datasets (Yahoo! music ratings, a Petuum-generated sparse
training matrix, Wikipedia page-view dumps, §5.1.3) are not redistributable,
so the executable examples and correctness tests run on small synthetic
datasets with the same record structure.
"""

from __future__ import annotations

import numpy as np


def partition(records: list, num_partitions: int) -> list[list]:
    """Split records into ``num_partitions`` round-robin partitions."""
    if num_partitions <= 0:
        raise ValueError("need at least one partition")
    parts: list[list] = [[] for _ in range(num_partitions)]
    for i, record in enumerate(records):
        parts[i % num_partitions].append(record)
    return parts


def music_ratings(num_users: int = 60, num_items: int = 20,
                  num_ratings: int = 600,
                  seed: int = 0) -> list[tuple[int, int, float]]:
    """Yahoo!-style ``(user, item, rating)`` triples with a low-rank
    structure so ALS has something to recover."""
    rng = np.random.default_rng(seed)
    rank = 3
    users = rng.normal(0.0, 1.0, size=(num_users, rank))
    items = rng.normal(0.0, 1.0, size=(num_items, rank))
    ratings = []
    for _ in range(num_ratings):
        u = int(rng.integers(num_users))
        i = int(rng.integers(num_items))
        score = float(users[u] @ items[i] + rng.normal(0.0, 0.1))
        ratings.append((u, i, score))
    return ratings


def training_samples(num_samples: int = 200, num_features: int = 12,
                     num_classes: int = 3,
                     seed: int = 0) -> list[tuple[np.ndarray, int]]:
    """Petuum-style classification samples ``(feature_vector, label)``."""
    rng = np.random.default_rng(seed)
    true_weights = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    samples = []
    for _ in range(num_samples):
        x = rng.normal(0.0, 1.0, size=num_features)
        logits = true_weights @ x
        label = int(np.argmax(logits + rng.normal(0.0, 0.3,
                                                  size=num_classes)))
        samples.append((x, label))
    return samples


def pageview_records(num_docs: int = 40, num_records: int = 800,
                     seed: int = 0) -> list[tuple[str, int]]:
    """Wikipedia-style hourly ``(document, view_count)`` records with a
    Zipf-like popularity skew."""
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, num_docs + 1)
    popularity /= popularity.sum()
    records = []
    for _ in range(num_records):
        doc = int(rng.choice(num_docs, p=popularity))
        views = int(rng.integers(1, 100))
        records.append((f"doc{doc}", views))
    return records
