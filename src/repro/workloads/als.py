"""Alternating Least Squares workload (Figure 3(c), §5.1.3).

Block ALS over user-item ratings (the paper uses 717M Yahoo! music ratings,
rank 50, 10 iterations). The DAG alternates between computing and
aggregating user and item factors:

* ``read`` (transient) loads rating triples;
* ``agg_user`` / ``agg_item`` (reserved, many-to-many in-edges) group the
  ratings into user and item blocks; ``agg_item`` additionally emits the
  per-item rating summaries that seed the initial item factors;
* ``user_factor_i`` (transient) solves each user's factor from its ratings
  block (one-to-one from ``agg_user``) and the broadcast item factors
  (one-to-many) — for the first iteration the broadcast side is
  ``agg_item``'s summary output;
* ``agg_user_factor_i`` (reserved) shuffles ``(item, (user_factor, rating))``
  pairs into item blocks (many-to-many);
* ``item_factor_i`` (reserved) has a *single one-to-one in-edge* from the
  aggregated user factors and is therefore placed on reserved containers for
  data locality — exactly the case §3.1.3 calls out.

ALS has the longest and most complex dependencies of the three workloads,
making it the most vulnerable to critical chains of cascading
recomputations (§5.2.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.resources import GB, MB
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                SourceKind)
from repro.engines.base import Program
from repro.errors import WorkloadError
from repro.workloads.datasets import music_ratings, partition
from repro.workloads.map_reduce import ShuffleCombiner


class _ReadRatingsFn:
    """Source yielding ``(user, (item, rating))`` keyed rating triples."""

    def __init__(self, parts: list[list]) -> None:
        self.partitions = parts

    def __call__(self, inputs: dict[str, list]) -> list:
        index = inputs["__task_index__"][0]
        return list(self.partitions[index])


class _GroupByUserFn:
    """Group ratings into ``(user, [(item, rating), ...])`` blocks."""

    def __call__(self, inputs: dict[str, list]) -> list:
        groups: dict[int, list] = {}
        for records in inputs.values():
            for user, (item, rating) in records:
                groups.setdefault(user, []).append((item, rating))
        return sorted((u, sorted(rs)) for u, rs in groups.items())


class _ItemSummaryFn:
    """Group by item and emit ``(item, (count, mean_rating))`` summaries —
    the seed for the initial item factors."""

    def __call__(self, inputs: dict[str, list]) -> list:
        sums: dict[int, tuple[int, float]] = {}
        for records in inputs.values():
            for user, (item, rating) in records:
                count, total = sums.get(item, (0, 0.0))
                sums[item] = (count + 1, total + rating)
        return sorted((item, (count, total / count))
                      for item, (count, total) in sums.items())


class _UserFactorFn:
    """Solve each user's factor; emit ``(item, (user_factor, rating))``."""

    def __init__(self, block_op: str, side_op: str, rank: int,
                 reg: float, side_is_summary: bool) -> None:
        self.block_op = block_op
        self.side_op = side_op
        self.rank = rank
        self.reg = reg
        self.side_is_summary = side_is_summary

    def _item_vectors(self, side_records: list) -> dict[int, np.ndarray]:
        vectors: dict[int, np.ndarray] = {}
        if self.side_is_summary:
            for item, (count, mean) in side_records:
                vec = np.full(self.rank, mean / np.sqrt(self.rank))
                vectors[item] = vec
        else:
            for item, vec in side_records:
                vectors[item] = vec
        return vectors

    def __call__(self, inputs: dict[str, list]) -> list:
        item_vecs = self._item_vectors(inputs[self.side_op])
        out = []
        for user, ratings in inputs[self.block_op]:
            a = self.reg * np.eye(self.rank)
            b = np.zeros(self.rank)
            for item, rating in ratings:
                q = item_vecs.get(item)
                if q is None:
                    continue
                a += np.outer(q, q)
                b += rating * q
            factor = np.linalg.solve(a, b)
            for item, rating in ratings:
                out.append((item, (user, tuple(factor), rating)))
        return out


class _GroupUserFactorsFn:
    """Group ``(item, (user, factor, rating))`` into item blocks."""

    def __call__(self, inputs: dict[str, list]) -> list:
        groups: dict[int, list] = {}
        for records in inputs.values():
            for item, payload in records:
                groups.setdefault(item, []).append(payload)
        return sorted((item, sorted(group))
                      for item, group in groups.items())


class _ItemFactorFn:
    """Solve each item's factor from its aggregated user factors."""

    def __init__(self, agg_op: str, rank: int, reg: float) -> None:
        self.agg_op = agg_op
        self.rank = rank
        self.reg = reg

    def __call__(self, inputs: dict[str, list]) -> list:
        out = []
        for item, pairs in inputs[self.agg_op]:
            a = self.reg * np.eye(self.rank)
            b = np.zeros(self.rank)
            for user, factor, rating in pairs:
                p = np.asarray(factor)
                a += np.outer(p, p)
                b += rating * p
            out.append((item, np.linalg.solve(a, b)))
        return out


def als_real_program(num_users: int = 40, num_items: int = 15,
                     num_ratings: int = 400, num_partitions: int = 4,
                     num_blocks: int = 3, rank: int = 3, iterations: int = 2,
                     reg: float = 0.1, seed: int = 0) -> Program:
    """Executable block ALS: engines must match the local runner's factors."""
    ratings = music_ratings(num_users, num_items, num_ratings, seed)
    keyed = [(u, (i, r)) for u, i, r in ratings]
    parts = partition(keyed, num_partitions)

    dag = LogicalDAG()
    read = dag.add_operator(Operator(
        "read", parallelism=num_partitions, fn=_ReadRatingsFn(parts),
        source_kind=SourceKind.READ, input_ref="ratings", record_bytes=24,
        cacheable=True))
    agg_user = dag.add_operator(Operator(
        "agg_user", parallelism=num_blocks, fn=_GroupByUserFn(),
        record_bytes=64))
    dag.connect(read, agg_user, DependencyType.MANY_TO_MANY)
    agg_item = dag.add_operator(Operator(
        "agg_item", parallelism=num_blocks, fn=_ItemSummaryFn(),
        record_bytes=24))
    dag.connect(read, agg_item, DependencyType.MANY_TO_MANY,
                key_fn=lambda rec: rec[1][0])  # shuffle ratings by item

    side = agg_item
    side_is_summary = True
    item_factor: Optional[Operator] = None
    for i in range(1, iterations + 1):
        user_factor = dag.add_operator(Operator(
            f"user_factor_{i}", parallelism=num_blocks,
            fn=_UserFactorFn("agg_user", side.name, rank, reg,
                             side_is_summary),
            record_bytes=16 + rank * 8, cacheable=True))
        dag.connect(agg_user, user_factor, DependencyType.ONE_TO_ONE)
        dag.connect(side, user_factor, DependencyType.ONE_TO_MANY)
        agg_uf = dag.add_operator(Operator(
            f"agg_user_factor_{i}", parallelism=num_blocks,
            fn=_GroupUserFactorsFn(), record_bytes=16 + rank * 8,
            combiner=ShuffleCombiner(overlap=0.0)))
        dag.connect(user_factor, agg_uf, DependencyType.MANY_TO_MANY)
        item_factor = dag.add_operator(Operator(
            f"item_factor_{i}", parallelism=num_blocks,
            fn=_ItemFactorFn(agg_uf.name, rank, reg),
            record_bytes=8 + rank * 8))
        dag.connect(agg_uf, item_factor, DependencyType.ONE_TO_ONE)
        side = item_factor
        side_is_summary = False
    dag.validate()
    return Program(dag, name="als")


def als_synthetic_program(iterations: int = 10, num_blocks: int = 40,
                          read_partitions: int = 80,
                          input_gb: float = 10.0,
                          factor_shuffle_gb: float = 8.0,
                          item_factor_mb: float = 54.0,
                          compute_factor: float = 9.0,
                          item_compute_factor: float = 1.0,
                          scale: float = 1.0) -> Program:
    """Paper-scale ALS byte model (Figure 5): 10 GB of ratings, rank 50,
    10 iterations, with ~12 GB of user-factor shuffle per iteration.

    The user-side solve dominates compute (1.8M users vs 136K items), so
    ``compute_factor`` applies to the transient user-factor tasks and the
    lighter ``item_compute_factor`` to the reserved item-factor tasks —
    consistent with Figure 8(a), where reserved containers are not ALS's
    bottleneck. ``scale`` shrinks task counts while keeping per-task sizes.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    num_blocks = max(2, int(round(num_blocks * scale)))
    read_partitions = max(2, int(round(read_partitions * scale)))
    part_bytes = int(input_gb * GB / (read_partitions / scale))
    block_bytes = int(input_gb * GB * scale / num_blocks)
    factor_bytes = int(factor_shuffle_gb * GB * scale / num_blocks)
    item_bytes = int(item_factor_mb * MB * scale / num_blocks)

    dag = LogicalDAG()
    read = dag.add_operator(Operator(
        "read", parallelism=read_partitions, source_kind=SourceKind.READ,
        input_ref="ratings", partition_bytes=[part_bytes] * read_partitions,
        cacheable=True))
    agg_user = dag.add_operator(Operator(
        "agg_user", parallelism=num_blocks,
        cost=OpCost(fixed_output_bytes=block_bytes)))
    dag.connect(read, agg_user, DependencyType.MANY_TO_MANY)
    agg_item = dag.add_operator(Operator(
        "agg_item", parallelism=num_blocks,
        cost=OpCost(fixed_output_bytes=item_bytes)))
    dag.connect(read, agg_item, DependencyType.MANY_TO_MANY)

    side = agg_item
    for i in range(1, iterations + 1):
        user_factor = dag.add_operator(Operator(
            f"user_factor_{i}", parallelism=num_blocks,
            cost=OpCost(fixed_output_bytes=factor_bytes,
                        compute_factor=compute_factor),
            cacheable=True))
        dag.connect(agg_user, user_factor, DependencyType.ONE_TO_ONE)
        dag.connect(side, user_factor, DependencyType.ONE_TO_MANY)
        agg_uf = dag.add_operator(Operator(
            f"agg_user_factor_{i}", parallelism=num_blocks,
            cost=OpCost(output_ratio=1.0),
            combiner=ShuffleCombiner(overlap=0.0)))
        dag.connect(user_factor, agg_uf, DependencyType.MANY_TO_MANY)
        item_factor = dag.add_operator(Operator(
            f"item_factor_{i}", parallelism=num_blocks,
            cost=OpCost(fixed_output_bytes=item_bytes,
                        compute_factor=item_compute_factor)))
        dag.connect(agg_uf, item_factor, DependencyType.ONE_TO_ONE)
        side = item_factor
    dag.validate()
    return Program(dag, name="als")
