"""Map-Reduce workload (Figure 3(a), §5.1.3).

The paper sums a month of hourly Wikipedia page-view counts per document
over a 280 GB dump: ``Read -> Map`` on transient containers, shuffled
many-to-many into ``Reduce`` on reserved containers.

Two variants:

* :func:`mr_real_program` — small executable program whose output every
  engine must reproduce exactly (correctness tests, examples);
* :func:`mr_synthetic_program` — paper-scale byte model driving the Figure 7
  benchmarks. MR has the simplest dependencies of the three workloads and
  imposes the heaviest load on Pado's reserved containers because partial
  aggregation barely shrinks a shuffle whose keys rarely collide (§5.2.3).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.resources import GB, MB
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                SourceKind)
from repro.dataflow.functions import CombineFn
from repro.dataflow.transforms import Pipeline
from repro.engines.base import Program
from repro.errors import WorkloadError
from repro.workloads.datasets import pageview_records, partition


class ShuffleCombiner(CombineFn):
    """Synthetic combiner for shuffle data with mostly-distinct keys.

    Page-view keys rarely collide within one executor's window, so merging
    ``n`` pieces only saves a small ``overlap`` fraction — this is why MR
    keeps Pado's reserved containers busy (§5.2.3).
    """

    def __init__(self, overlap: float = 0.15) -> None:
        if not 0.0 <= overlap < 1.0:
            raise ValueError("overlap must be a fraction in [0, 1)")
        self.overlap = overlap

    def create(self):
        return 0

    def merge(self, left, right):
        return left + right

    def merged_size_bytes(self, sizes: Sequence[float]) -> float:
        if not sizes:
            return 0.0
        total = sum(sizes)
        saved = self.overlap * (total - max(sizes))
        return total - saved


def mr_real_program(num_docs: int = 40, num_records: int = 800,
                    num_partitions: int = 6, reduce_parallelism: int = 3,
                    seed: int = 0) -> Program:
    """Executable page-view summation over a small synthetic dump."""
    records = pageview_records(num_docs, num_records, seed)
    parts = partition(records, num_partitions)
    p = Pipeline("mr")
    lines = p.read("read", partitions=parts, cacheable=True)
    pairs = lines.map("map", lambda rec: (rec[0], rec[1]))
    pairs.reduce_by_key("reduce", ShuffleCombiner(),
                        parallelism=reduce_parallelism)
    return Program(p.to_dag(), name="mr")


def mr_synthetic_program(input_gb: float = 280.0,
                         map_partition_mb: float = 128.0,
                         reduce_parallelism: int = 48,
                         map_output_ratio: float = 0.45,
                         map_compute_factor: float = 4.0,
                         reduce_output_ratio: float = 0.3,
                         reduce_compute_factor: float = 0.3,
                         scale: float = 1.0) -> Program:
    """Paper-scale MR byte model (Figure 7).

    Parsing dominates the map phase (``map_compute_factor``), matching the
    paper's map-heavy 280 GB job. ``scale`` shrinks the input proportionally
    for faster simulation while keeping per-task sizes (and therefore
    per-task timings) fixed.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    total_bytes = input_gb * GB * scale
    part_bytes = int(map_partition_mb * MB)
    num_parts = max(1, int(round(total_bytes / part_bytes)))

    dag = LogicalDAG()
    read = dag.add_operator(Operator(
        "read", parallelism=num_parts, source_kind=SourceKind.READ,
        input_ref="pageviews", partition_bytes=[part_bytes] * num_parts,
        cost=OpCost(output_ratio=1.0), cacheable=True))
    map_op = dag.add_operator(Operator(
        "map", parallelism=num_parts,
        cost=OpCost(output_ratio=map_output_ratio,
                    compute_factor=map_compute_factor)))
    reduce_op = dag.add_operator(Operator(
        "reduce", parallelism=reduce_parallelism,
        cost=OpCost(output_ratio=reduce_output_ratio,
                    compute_factor=reduce_compute_factor),
        combiner=ShuffleCombiner()))
    dag.connect(read, map_op, DependencyType.ONE_TO_ONE)
    dag.connect(map_op, reduce_op, DependencyType.MANY_TO_MANY)
    dag.validate()
    return Program(dag, name="mr")
