"""Fan-out log-analytics pipeline — the local-retention stress workload.

The paper's three workloads fuse into single transient chains per stage:
every transient output escapes straight to the reserved side, so nothing
of committed work lives on transient containers. Real pipelines are less
tidy — a parsed log is consumed by *several* sibling branches before
anything aggregates. Fan-out breaks operator fusion (a producer with two
consumers cannot join either consumer's chain), which makes Pado retain
the producer's outputs *locally on the transient side* for its intra-stage
consumers (§3.2.4): exactly the state an eviction destroys after the
producer already committed, forcing ``local-output-lost`` recomputes.

This workload exists to measure that loss mode — and what the
:mod:`repro.predict` proactive re-replication path saves of it (see
docs/PREDICTION.md and ``python -m repro psweep``).

Shape (all transient until the reduce)::

    read ─1:1─ parse ─1:1─┬─ sessions ─m:m─┐
                          └─ errors  ──m:m─┴─ reduce (reserved)
"""

from __future__ import annotations

from repro.cluster.resources import GB, MB
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                SourceKind)
from repro.engines.base import Program
from repro.errors import WorkloadError
from repro.workloads.map_reduce import ShuffleCombiner


def fanout_synthetic_program(input_gb: float = 200.0,
                             partition_mb: float = 128.0,
                             reduce_parallelism: int = 40,
                             parse_output_ratio: float = 0.3,
                             parse_compute_factor: float = 9.0,
                             branch_compute_factor: float = 1.5,
                             scale: float = 1.0) -> Program:
    """Paper-scale byte model of the fan-out pipeline.

    ``parse`` is the expensive shared step (log parsing dominates, like
    MR's map phase); ``sessions`` and ``errors`` both read its retained
    local output, so an eviction of a parse executor between parse's
    commit and the branches' fetches re-runs parse. ``scale`` shrinks the
    input while keeping per-task sizes fixed, like the other workloads.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    total_bytes = input_gb * GB * scale
    part_bytes = int(partition_mb * MB)
    num_parts = max(1, int(round(total_bytes / part_bytes)))

    dag = LogicalDAG()
    read = dag.add_operator(Operator(
        "read", parallelism=num_parts, source_kind=SourceKind.READ,
        input_ref="rawlogs", partition_bytes=[part_bytes] * num_parts,
        cost=OpCost(output_ratio=1.0), cacheable=True))
    parse = dag.add_operator(Operator(
        "parse", parallelism=num_parts,
        cost=OpCost(output_ratio=parse_output_ratio,
                    compute_factor=parse_compute_factor)))
    sessions = dag.add_operator(Operator(
        "sessions", parallelism=num_parts,
        cost=OpCost(output_ratio=0.5,
                    compute_factor=branch_compute_factor)))
    errors = dag.add_operator(Operator(
        "errors", parallelism=num_parts,
        cost=OpCost(output_ratio=0.15,
                    compute_factor=branch_compute_factor)))
    reduce_op = dag.add_operator(Operator(
        "reduce", parallelism=reduce_parallelism,
        cost=OpCost(output_ratio=0.3, compute_factor=0.3),
        combiner=ShuffleCombiner()))
    dag.connect(read, parse, DependencyType.ONE_TO_ONE)
    dag.connect(parse, sessions, DependencyType.ONE_TO_ONE)
    dag.connect(parse, errors, DependencyType.ONE_TO_ONE)
    dag.connect(sessions, reduce_op, DependencyType.MANY_TO_MANY)
    dag.connect(errors, reduce_op, DependencyType.MANY_TO_MANY)
    dag.validate()
    return Program(dag, name="fanout")
