"""Multinomial Logistic Regression workload (Figure 3(b), §5.1.3).

Each iteration computes per-partition gradients against the latest model
(550 map tasks over a 31 GB training matrix in the paper), tree-aggregates
the 323 MB gradient vectors, and updates the model. The model is broadcast
one-to-many to the gradient tasks; gradients flow many-to-one into the
aggregators. MLR is where Pado's partial aggregation shines: gradient
vectors merge without growing (§5.2.2).

Compilation (asserted in tests, matching Figure 3(b)): the created model
source and every aggregate/update operator land on reserved containers;
reads and gradient computation land on transient containers; one stage per
reserved operator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.resources import GB, MB
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                SourceKind)
from repro.dataflow.functions import CombineFn
from repro.engines.base import Program
from repro.errors import WorkloadError
from repro.workloads.datasets import partition, training_samples


class VectorSumCombiner(CombineFn):
    """Sum of fixed-width gradient vectors: merging never grows the data."""

    def create(self):
        return 0.0

    def merge(self, left, right):
        return left + right

    def merged_size_bytes(self, sizes: Sequence[float]) -> float:
        return max(sizes) if sizes else 0.0


class _CreateModelFn:
    """Source function producing the initial model matrix."""

    def __init__(self, num_classes: int, num_features: int) -> None:
        self.shape = (num_classes, num_features)

    def __call__(self, inputs: dict[str, list]) -> list:
        return [np.zeros(self.shape)]


class _GradientFn:
    """Softmax-regression gradient over one training partition."""

    def __init__(self, read_op: str, model_op: str) -> None:
        self.read_op = read_op
        self.model_op = model_op

    def __call__(self, inputs: dict[str, list]) -> list:
        models = inputs[self.model_op]
        if len(models) != 1:
            raise WorkloadError(f"expected one model, got {len(models)}")
        weights = models[0]
        samples = inputs[self.read_op]
        grad = np.zeros_like(weights)
        for x, label in samples:
            logits = weights @ x
            logits -= logits.max()
            probs = np.exp(logits)
            probs /= probs.sum()
            probs[label] -= 1.0
            grad += np.outer(probs, x)
        return [grad]


class _AggregateFn:
    """Partial sum of incoming gradient contributions."""

    def __call__(self, inputs: dict[str, list]) -> list:
        acc = None
        for records in inputs.values():
            for grad in records:
                acc = grad if acc is None else acc + grad
        return [] if acc is None else [acc]


class _UpdateModelFn:
    """Gradient-descent step from the previous model."""

    def __init__(self, agg_op: str, prev_model_op: str,
                 learning_rate: float) -> None:
        self.agg_op = agg_op
        self.prev_model_op = prev_model_op
        self.learning_rate = learning_rate

    def __call__(self, inputs: dict[str, list]) -> list:
        prev = inputs[self.prev_model_op]
        if len(prev) != 1:
            raise WorkloadError("expected exactly one previous model")
        total = None
        for grad in inputs[self.agg_op]:
            total = grad if total is None else total + grad
        if total is None:
            return [prev[0]]
        return [prev[0] - self.learning_rate * total]


def mlr_real_program(num_samples: int = 120, num_features: int = 8,
                     num_classes: int = 3, num_partitions: int = 5,
                     agg_parallelism: int = 2, iterations: int = 3,
                     learning_rate: float = 0.05, seed: int = 0) -> Program:
    """Executable MLR: engines must converge to the local runner's model."""
    samples = training_samples(num_samples, num_features, num_classes, seed)
    parts = partition(samples, num_partitions)
    record_bytes = num_features * 8 + 8

    dag = LogicalDAG()
    from repro.dataflow.transforms import _ReadPartitionFn
    read = dag.add_operator(Operator(
        "read", parallelism=num_partitions, fn=_ReadPartitionFn(parts),
        source_kind=SourceKind.READ, input_ref="train",
        record_bytes=record_bytes, cacheable=True))
    model_bytes = num_classes * num_features * 8
    prev = dag.add_operator(Operator(
        "model_0", parallelism=1,
        fn=_CreateModelFn(num_classes, num_features),
        source_kind=SourceKind.CREATED, record_bytes=model_bytes))
    for i in range(1, iterations + 1):
        grad = dag.add_operator(Operator(
            f"grad_{i}", parallelism=num_partitions,
            fn=_GradientFn("read", prev.name), cacheable=True,
            record_bytes=model_bytes))
        dag.connect(read, grad, DependencyType.ONE_TO_ONE)
        dag.connect(prev, grad, DependencyType.ONE_TO_MANY)
        agg = dag.add_operator(Operator(
            f"agg_{i}", parallelism=agg_parallelism, fn=_AggregateFn(),
            combiner=VectorSumCombiner(), record_bytes=model_bytes))
        dag.connect(grad, agg, DependencyType.MANY_TO_ONE)
        model = dag.add_operator(Operator(
            f"model_{i}", parallelism=1,
            fn=_UpdateModelFn(agg.name, prev.name, learning_rate),
            record_bytes=model_bytes))
        dag.connect(agg, model, DependencyType.MANY_TO_ONE)
        dag.connect(prev, model, DependencyType.ONE_TO_ONE)
        prev = model
    dag.validate()
    return Program(dag, name="mlr")


def mlr_synthetic_program(iterations: int = 5, num_map_tasks: int = 550,
                          agg_parallelism: int = 22,
                          input_gb: float = 31.0,
                          gradient_mb: float = 323.0,
                          compute_factor: float = 8.0,
                          scale: float = 1.0) -> Program:
    """Paper-scale MLR byte model (Figure 6): 5 iterations, 550 map tasks,
    323 MB compressed gradient vectors, tree aggregation into 22 tasks.

    ``scale`` shrinks task counts (not per-task sizes), keeping per-task
    timing behaviour while making simulation faster.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    num_map_tasks = max(2, int(round(num_map_tasks * scale)))
    agg_parallelism = max(1, int(round(agg_parallelism * scale)))
    part_bytes = int(input_gb * GB / (num_map_tasks / scale))
    grad_bytes = int(gradient_mb * MB)

    dag = LogicalDAG()
    read = dag.add_operator(Operator(
        "read", parallelism=num_map_tasks, source_kind=SourceKind.READ,
        input_ref="train", partition_bytes=[part_bytes] * num_map_tasks,
        cacheable=True))
    prev = dag.add_operator(Operator(
        "model_0", parallelism=1, source_kind=SourceKind.CREATED,
        cost=OpCost(fixed_output_bytes=grad_bytes)))
    for i in range(1, iterations + 1):
        grad = dag.add_operator(Operator(
            f"grad_{i}", parallelism=num_map_tasks,
            cost=OpCost(fixed_output_bytes=grad_bytes,
                        compute_factor=compute_factor),
            cacheable=True))
        dag.connect(read, grad, DependencyType.ONE_TO_ONE)
        dag.connect(prev, grad, DependencyType.ONE_TO_MANY)
        agg = dag.add_operator(Operator(
            f"agg_{i}", parallelism=agg_parallelism,
            cost=OpCost(fixed_output_bytes=grad_bytes),
            combiner=VectorSumCombiner()))
        dag.connect(grad, agg, DependencyType.MANY_TO_ONE)
        model = dag.add_operator(Operator(
            f"model_{i}", parallelism=1,
            cost=OpCost(fixed_output_bytes=grad_bytes)))
        dag.connect(agg, model, DependencyType.MANY_TO_ONE)
        dag.connect(prev, model, DependencyType.ONE_TO_ONE)
        prev = model
    dag.validate()
    return Program(dag, name="mlr")
