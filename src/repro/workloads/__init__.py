"""The paper's three evaluation workloads (§5.1.3): Map-Reduce, Multinomial
Logistic Regression, and Alternating Least Squares — each in an executable
real-data variant (correctness) and a paper-scale synthetic variant
(benchmarks)."""

from repro.workloads.als import als_real_program, als_synthetic_program
from repro.workloads.datasets import (music_ratings, pageview_records,
                                      partition, training_samples)
from repro.workloads.map_reduce import (ShuffleCombiner, mr_real_program,
                                        mr_synthetic_program)
from repro.workloads.mlr import (VectorSumCombiner, mlr_real_program,
                                 mlr_synthetic_program)
from repro.workloads.pipeline import fanout_synthetic_program

__all__ = [
    "ShuffleCombiner", "VectorSumCombiner", "als_real_program",
    "als_synthetic_program", "fanout_synthetic_program", "mlr_real_program",
    "mlr_synthetic_program", "mr_real_program", "mr_synthetic_program",
    "music_ratings", "pageview_records", "partition", "training_samples",
]
