"""Setuptools shim.

The reference environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build. This shim lets ``python setup.py develop`` / legacy editable installs
work offline; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
