"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper and saves the
rendered artifact under ``benchmarks/results/`` so the reproduction can be
inspected after ``pytest benchmarks/ --benchmark-only``.

Setting the ``REPRO_TRACE_DIR`` environment variable additionally records a
structured event trace (see docs/OBSERVABILITY.md) for every simulated job a
benchmark runs, dumped as ``<dir>/<test-name>/<run-label>.jsonl`` plus a
Chrome/Perfetto-loadable ``.trace.json``::

    REPRO_TRACE_DIR=traces PYTHONPATH=src python -m pytest benchmarks/ -q
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.obs.tracer import collecting

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_artifact():
    """Write a rendered table to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save


@pytest.fixture(autouse=True)
def trace_runs(request):
    """Dump per-run traces when REPRO_TRACE_DIR is set (no-op otherwise)."""
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir:
        yield
        return
    with collecting() as collector:
        yield
    safe = "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in request.node.name)
    if collector.runs:
        collector.dump(pathlib.Path(trace_dir) / safe)
