"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper and saves the
rendered artifact under ``benchmarks/results/`` so the reproduction can be
inspected after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_artifact():
    """Write a rendered table to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save
