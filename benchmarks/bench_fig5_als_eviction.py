"""Figure 5: ALS job completion times and relaunched-task ratios under
different eviction rates (Spark vs Spark-checkpoint vs Pado)."""

from repro.bench.experiments import completed, jct_of
from repro.bench import fig5_als, render_table


def test_fig5_als_eviction(benchmark, save_artifact):
    rows = benchmark.pedantic(fig5_als, rounds=1, iterations=1)
    text = render_table(
        ["workload", "eviction", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title="Figure 5: ALS under different eviction rates "
              "(40 transient + 5 reserved)")
    save_artifact("fig5_als_eviction", text)

    # Paper shapes: Pado's JCT grows smoothly and stays lowest at high
    # eviction; Spark collapses (does not finish within the cutoff, or is
    # several times slower); Spark-checkpoint sits in between.
    assert jct_of(rows, "high", "pado") <= \
        jct_of(rows, "high", "spark-checkpoint")
    spark_high = jct_of(rows, "high", "spark")
    assert (not completed(rows, "high", "spark")
            or spark_high > 2.0 * jct_of(rows, "high", "pado"))
    # Pado degrades gently from none to high (paper: ~1.5x).
    assert jct_of(rows, "high", "pado") < 2.0 * jct_of(rows, "none", "pado")
    # Checkpointing avoids Spark's collapse.
    assert completed(rows, "high", "spark-checkpoint")
