"""Microbenchmarks for the discrete-event simulator hot path.

The event loop dominates every experiment (a 0.2-scale MLR run executes a
few hundred thousand events), so this file pins its performance:
schedule/step throughput, handle-free fast scheduling, cancellation +
compaction, and one end-to-end engine run. ``BENCH_simulator.json`` in
this directory is the committed baseline; regenerate it after intentional
changes with::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator_hotpath.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_simulator.json

and compare against the previous numbers in docs/PERFORMANCE.md.
"""

from __future__ import annotations

from repro.bench.experiments import make_workload, run_one
from repro.cluster.events import Simulator
from repro.core.runtime.engine import PadoEngine
from repro.engines.base import ClusterConfig
from repro.trace import EvictionRate

N_EVENTS = 50_000


def _noop() -> None:
    return None


def _schedule_and_drain() -> int:
    sim = Simulator()
    for i in range(N_EVENTS):
        sim.schedule(float(i % 97), _noop)
    while sim.step():
        pass
    return sim.events_processed


def _schedule_fast_and_drain() -> int:
    sim = Simulator()
    for i in range(N_EVENTS):
        sim.schedule_fast(float(i % 97), _noop)
    while sim.step():
        pass
    return sim.events_processed


def _cancel_storm() -> int:
    sim = Simulator()
    handles = [sim.schedule(float(i % 97) + 1.0, _noop)
               for i in range(N_EVENTS)]
    for handle in handles:
        handle.cancel()
    sim.run()
    return sim.pending_events


def test_schedule_step_hot_path(benchmark):
    """Handle-returning schedule + step: the general-purpose path."""
    processed = benchmark(_schedule_and_drain)
    assert processed == N_EVENTS


def test_schedule_fast_hot_path(benchmark):
    """Handle-free scheduling: what transfer/compute completions use."""
    processed = benchmark(_schedule_fast_and_drain)
    assert processed == N_EVENTS


def test_cancel_and_compact(benchmark):
    """Mass cancellation with tombstone compaction."""
    remaining = benchmark(_cancel_storm)
    assert remaining == 0


def test_run_one_pado_mlr(benchmark):
    """End-to-end: one Pado MLR run under the high eviction rate."""

    def run():
        return run_one(PadoEngine(), make_workload("mlr"),
                       ClusterConfig(eviction=EvictionRate.HIGH), seed=11)

    result = benchmark(run)
    assert result.completed
