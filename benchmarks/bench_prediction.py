"""Prediction-stack benchmarks: one psweep cell pair per workload.

Times the static/predictive head-to-head of :mod:`repro.bench.prediction`
under the dense correlated-wave regime — the cell where the §6 prediction
stack (lifetime placement, online hazard predictor, proactive
re-replication) is supposed to earn its keep — and asserts that it still
does. ``BENCH_prediction.json`` in this directory is the committed sweep
baseline (12 rows: workload x regime x variant); regenerate it after
intentional changes with::

    PYTHONPATH=src python -m repro psweep \
        --out benchmarks/BENCH_prediction.json

and walk through the numbers in docs/PREDICTION.md. The sweep is
deterministic in its seed, so the committed file only changes when the
predictor, placement, or engine code changes meaningfully;
``scripts/compare_bench.py`` gates the per-cell JCTs in CI.
"""

from __future__ import annotations

import pytest

from repro.bench.prediction import prediction_sweep, prediction_table

#: The dense regime only: the sparse cells are (by design) neutral and
#: would just double the benchmark wall time.
DENSE = (("dense", 240.0, 0.6),)


@pytest.mark.parametrize("workload", ["mlr", "fanout"])
def test_psweep_cell(benchmark, workload, save_artifact):
    """One static/predictive pair under dense waves: the unit of work the
    psweep CLI repeats per cell."""

    rows = benchmark(lambda: prediction_sweep(workloads=(workload,),
                                              regimes=DENSE))
    static, predictive = rows
    assert static["variant"] == "static"
    assert predictive["variant"] == "predictive"
    assert static["completed"] and predictive["completed"]
    # The committed baseline's headline: under dense correlated waves the
    # prediction stack must cut both recomputation and completion time.
    assert predictive["relaunched"] < static["relaunched"]
    assert predictive["jct_minutes"] < static["jct_minutes"]
    if workload == "fanout":
        # The fan-out pipeline retains local outputs, so the proactive
        # push path must actually fire and convert losses into restores.
        assert predictive["proactive_pushes"] > 0
        assert predictive["recomputes_avoided"] > 0
    save_artifact(f"psweep_{workload}",
                  prediction_table(rows,
                                   title=f"psweep cell: workload={workload} "
                                         f"regime=dense"))


def test_psweep_mr_neutral(save_artifact):
    """MR has no intra-stage fan-out and a single transient class, so the
    prediction stack must be JCT-neutral there — catching accidental
    overhead on workloads it cannot help."""

    rows = prediction_sweep(workloads=("mr",), regimes=DENSE)
    static, predictive = rows
    assert predictive["proactive_pushes"] == 0
    assert abs(predictive["jct_minutes"] - static["jct_minutes"]) \
        <= 0.05 * static["jct_minutes"]
    save_artifact("psweep_mr",
                  prediction_table(rows, title="psweep cell: workload=mr "
                                               "regime=dense"))
