"""End-to-end engine benchmarks: one full ``run_one`` per cell.

Where ``bench_simulator_hotpath.py`` pins the event loop in isolation,
this file pins the whole engine hot path — fetch planning, network flow
batching, disk I/O, and the tracer-off fast path — for the runs that
dominate every Figure 5-9 sweep: the MR workload at bench scale, across
the three engines and the two extreme eviction rates.
``BENCH_engine.json`` in this directory is the committed baseline;
regenerate it after intentional changes with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_e2e.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_engine.json

and compare against the before/after table in docs/PERFORMANCE.md
("The network hot path"). Use ``python -m repro profile <experiment>``
to find where a regression (or the next optimization) lives.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import make_workload, run_one
from repro.core.runtime.engine import PadoEngine
from repro.engines.base import ClusterConfig
from repro.engines.spark import SparkEngine
from repro.engines.spark_checkpoint import SparkCheckpointEngine
from repro.trace import EvictionRate

ENGINES = {
    "pado": PadoEngine,
    "spark": SparkEngine,
    "spark-checkpoint": SparkCheckpointEngine,
}

EVICTION = {
    "none": EvictionRate.NONE,
    "high": EvictionRate.HIGH,
}


@pytest.mark.parametrize("eviction", sorted(EVICTION))
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_run_one_mr(benchmark, engine, eviction):
    """One full MR run: the unit of work every sweep repeats dozens of
    times. The high-eviction Spark cell is the sweep bottleneck."""

    def run():
        return run_one(ENGINES[engine](), make_workload("mr"),
                       ClusterConfig(eviction=EVICTION[eviction]), seed=11)

    result = benchmark(run)
    assert result.completed
