"""Figure 1: CDFs of transient container lifetimes over safety margins."""

from repro.bench import fig1_lifetime_cdfs, render_cdf_series


def test_fig1_lifetime_cdfs(benchmark, save_artifact):
    curves = benchmark.pedantic(fig1_lifetime_cdfs, rounds=1, iterations=1)
    text = render_cdf_series(
        curves, title="Figure 1: CDFs of transient container lifetimes")
    save_artifact("fig1_lifetime_cdfs", text)

    def cdf_at(label_prefix, minute):
        for name, (xs, ys) in curves.items():
            if name.startswith(label_prefix):
                idx = min(range(len(xs)), key=lambda i: abs(xs[i] - minute))
                return ys[idx]
        raise KeyError(label_prefix)

    # Paper: under the 0.1% margin most containers are evicted within half
    # an hour; looser margins retain far more.
    assert cdf_at("high", 30) > 0.85
    assert cdf_at("high", 30) > cdf_at("medium", 30) > cdf_at("low", 30)
    # CDFs are monotone.
    for xs, ys in curves.values():
        assert all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))
