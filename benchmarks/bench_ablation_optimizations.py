"""Ablations of the §3.2.7 optimizations and the baselines' fetch
semantics — the design choices DESIGN.md calls out."""

from repro.bench import (ablation_aggregation_limits,
                         ablation_fetch_semantics,
                         ablation_lifetime_aware_scheduling,
                         ablation_optimizations, render_table)


def test_ablation_optimizations(benchmark, save_artifact):
    rows = benchmark.pedantic(ablation_optimizations, rounds=1, iterations=1)
    text = render_table(
        ["variant", "JCT (m)", "pushed (GB)", "input read (GB)",
         "shuffled (GB)"], rows,
        title="Ablation: Pado optimizations on MLR (high eviction)")
    save_artifact("ablation_optimizations", text)

    by_name = {r[0]: r for r in rows}
    # Partial aggregation shrinks what reserved executors receive.
    assert by_name["full"][2] < by_name["no-partial-agg"][2]
    # Caching cuts input re-reads across iterations.
    assert by_name["full"][3] <= by_name["no-caching"][3]
    # The full configuration is the fastest (or ties).
    assert by_name["full"][1] <= min(r[1] for r in rows) + 0.5


def test_ablation_aggregation_limits(benchmark, save_artifact):
    rows = benchmark.pedantic(ablation_aggregation_limits, rounds=1,
                              iterations=1)
    text = render_table(
        ["max merged tasks", "JCT (m)", "pushed (GB)", "relaunched"], rows,
        title="Ablation: partial-aggregation escape limit (MLR, high "
              "eviction)")
    save_artifact("ablation_aggregation_limits", text)

    pushed = {r[0]: r[2] for r in rows}
    # Bigger batches -> fewer bytes pushed to reserved executors.
    assert pushed[8] <= pushed[2] <= pushed[1]


def test_ablation_lifetime_aware_scheduling(benchmark, save_artifact):
    rows = benchmark.pedantic(ablation_lifetime_aware_scheduling, rounds=1,
                              iterations=1)
    text = render_table(
        ["policy", "JCT (m)", "relaunched tasks", "relaunch ratio"], rows,
        title="Ablation (§6): lifetime-aware placement on mixed transient "
              "pools (MLR)")
    save_artifact("ablation_lifetime_aware", text)
    by_name = {r[0]: r for r in rows}
    # Heavy tasks on long-lived containers lose less work to evictions.
    assert by_name["lifetime-aware"][2] <= by_name["default"][2]


def test_ablation_fetch_semantics(benchmark, save_artifact):
    rows = benchmark.pedantic(ablation_fetch_semantics, rounds=1,
                              iterations=1)
    text = render_table(
        ["fetch-failure semantics", "JCT (m)", "relaunched",
         "shuffled (GB)"], rows,
        title="Ablation: Spark fetch-failure handling on ALS "
              "(high eviction)")
    save_artifact("ablation_fetch_semantics", text)
    by_name = {r[0]: r for r in rows}
    # Aborting whole attempts re-pulls more shuffle data.
    assert by_name["abort-attempt"][3] >= by_name["refetch-missing"][3]
