"""The paper's repetition protocol (§5.1.3): each configuration runs five
times; averages and standard deviations are reported."""

from repro.bench import averaged_eviction_sweep, render_table

HEADERS = ["workload", "eviction", "engine", "JCT (m, mean ± std)",
           "completed"]


def test_averaged_mr_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        averaged_eviction_sweep, args=("mr",),
        kwargs={"scale": 0.15, "seeds": (11, 12, 13, 14, 15)},
        rounds=1, iterations=1)
    text = render_table(HEADERS, [r.as_tuple() for r in rows],
                        title="MR, 5 seeds per configuration "
                              "(none vs high eviction)")
    save_artifact("averaged_mr_sweep", text)
    by_key = {(r.eviction, r.engine): r for r in rows}
    # The averaged ordering matches the single-seed Figure 7 shape.
    assert by_key[("high", "pado")].mean_jct_minutes < \
        by_key[("high", "spark")].mean_jct_minutes
    # Without evictions the runs are deterministic: zero spread (up to
    # floating-point epsilon in the std computation).
    for row in rows:
        if row.eviction == "none":
            assert row.std_jct_minutes < 1e-9
            assert row.completed_runs == row.total_runs
