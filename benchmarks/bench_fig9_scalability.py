"""Figure 9: Pado's scalability with a fixed 8:1 ratio of transient to
reserved containers under the high eviction rate."""

from repro.bench import fig9_scalability, render_table


def test_fig9_scalability(benchmark, save_artifact):
    rows = benchmark.pedantic(fig9_scalability, rounds=1, iterations=1)
    text = render_table(
        ["workload", "cluster", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title="Figure 9: Pado JCT with 27/45/63 containers at a fixed 8:1 "
              "transient:reserved ratio (high eviction)")
    save_artifact("fig9_scalability", text)

    small, mid, large = ("27(24T+3R)", "45(40T+5R)", "63(56T+7R)")
    for workload in ("als", "mlr", "mr"):
        per = {label: next(r.jct_minutes for r in rows
                           if r.workload == workload and r.eviction == label)
               for label in (small, mid, large)}
        # All workloads scale with more containers (monotone non-increasing
        # within a small tolerance for scheduling noise).
        assert per[large] <= per[small] * 1.05, workload
        assert per[mid] <= per[small] * 1.1, workload
    # ALS is the most communication-intensive workload and scales worst.
    def ratio(workload):
        first = next(r.jct_minutes for r in rows
                     if r.workload == workload and r.eviction == small)
        last = next(r.jct_minutes for r in rows
                    if r.workload == workload and r.eviction == large)
        return first / last

    assert ratio("als") <= max(ratio("mlr"), ratio("mr")) * 1.5
