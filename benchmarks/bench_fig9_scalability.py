"""Figure 9: Pado's scalability with a fixed 8:1 ratio of transient to
reserved containers under the high eviction rate — plus ``fig9xl``, the
array-core stress cell two orders of magnitude past the paper (10,000
containers, >1M simulator events). The fig9xl wall time is pinned in
``BENCH_simulator.json``; regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator_hotpath.py \
        "benchmarks/bench_fig9_scalability.py::test_fig9xl_stress" \
        --benchmark-only --benchmark-json=benchmarks/BENCH_simulator.json
"""

from repro.bench import fig9_scalability, fig9xl_stress, render_table


def test_fig9_scalability(benchmark, save_artifact):
    rows = benchmark.pedantic(fig9_scalability, rounds=1, iterations=1)
    text = render_table(
        ["workload", "cluster", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title="Figure 9: Pado JCT with 27/45/63 containers at a fixed 8:1 "
              "transient:reserved ratio (high eviction)")
    save_artifact("fig9_scalability", text)

    small, mid, large = ("27(24T+3R)", "45(40T+5R)", "63(56T+7R)")
    for workload in ("als", "mlr", "mr"):
        per = {label: next(r.jct_minutes for r in rows
                           if r.workload == workload and r.eviction == label)
               for label in (small, mid, large)}
        # All workloads scale with more containers (monotone non-increasing
        # within a small tolerance for scheduling noise).
        assert per[large] <= per[small] * 1.05, workload
        assert per[mid] <= per[small] * 1.1, workload
    # ALS is the most communication-intensive workload and scales worst.
    def ratio(workload):
        first = next(r.jct_minutes for r in rows
                     if r.workload == workload and r.eviction == small)
        last = next(r.jct_minutes for r in rows
                    if r.workload == workload and r.eviction == large)
        return first / last

    assert ratio("als") <= max(ratio("mlr"), ratio("mr")) * 1.5


def test_fig9xl_stress(benchmark, save_artifact):
    """The array core at 100x the paper's cluster: a 10k-container fleet
    at the high eviction rate with a continuous synthetic shuffle. One
    round; the committed baseline pins the single-digit-second target."""
    stats = benchmark.pedantic(fig9xl_stress, rounds=1, iterations=1)
    text = render_table(
        ["containers", "simulated", "events", "evictions", "transfers",
         "completed", "failed"], [stats.as_tuple()],
        title="fig9xl: array-core stress at 100x the paper's cluster")
    save_artifact("fig9xl_stress", text)

    assert stats.num_containers == 10_000
    assert stats.events >= 1_000_000
    assert stats.evictions > 100_000
    # Churn really interleaves with the shuffle: some transfers must have
    # failed on a mid-flight eviction, but never the majority.
    assert 0 < stats.transfers_failed < stats.transfers_completed
