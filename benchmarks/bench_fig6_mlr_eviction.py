"""Figure 6: MLR job completion times and relaunched-task ratios under
different eviction rates."""

from repro.bench.experiments import completed, jct_of
from repro.bench import fig6_mlr, render_table


def test_fig6_mlr_eviction(benchmark, save_artifact):
    rows = benchmark.pedantic(fig6_mlr, rounds=1, iterations=1)
    text = render_table(
        ["workload", "eviction", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title="Figure 6: MLR under different eviction rates "
              "(40 transient + 5 reserved)")
    save_artifact("fig6_mlr_eviction", text)

    # Paper: Pado outperforms Spark-checkpoint even more than in ALS
    # thanks to partial aggregation; Spark degrades severely at high.
    assert jct_of(rows, "high", "pado") < \
        jct_of(rows, "high", "spark-checkpoint")
    assert (not completed(rows, "high", "spark")
            or jct_of(rows, "high", "spark") >
            2.5 * jct_of(rows, "high", "pado"))
    # At medium and high, Pado is the fastest of the three.
    for rate in ("medium", "high"):
        pado = jct_of(rows, rate, "pado")
        assert pado <= jct_of(rows, rate, "spark-checkpoint")
        assert pado <= jct_of(rows, rate, "spark")
    # Pado stays within ~1.5x of its eviction-free JCT.
    assert jct_of(rows, "high", "pado") < 1.6 * jct_of(rows, "none", "pado")
