"""Figure 8: JCT with different numbers of reserved containers (3-7), in
addition to 40 transient containers under the high eviction rate."""

import pytest
from repro.bench.experiments import jct_of
from repro.bench import fig8_reserved_sweep, render_table


@pytest.mark.parametrize("workload", ["als", "mlr", "mr"])
def test_fig8_reserved_sweep(benchmark, save_artifact, workload):
    rows = benchmark.pedantic(fig8_reserved_sweep, args=(workload,),
                              rounds=1, iterations=1)
    text = render_table(
        ["workload", "cluster", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title=f"Figure 8({workload}): JCT vs number of reserved containers "
              f"(40 transient, high eviction)")
    save_artifact(f"fig8_reserved_sweep_{workload}", text)

    # Fewer reserved containers degrade both engines.
    for engine in ("pado", "spark-checkpoint"):
        assert jct_of(rows, "reserved=3", engine) >= \
            0.95 * jct_of(rows, "reserved=7", engine)
    # Paper: Pado outperforms Spark-checkpoint at every reserved count for
    # ALS and MLR (by up to 3.8x); for MR the two are close, with Pado's
    # slope slightly steeper as the reduce work concentrates on fewer
    # reserved nodes.
    if workload in ("als", "mlr"):
        for reserved in (3, 4, 5, 6, 7):
            assert jct_of(rows, f"reserved={reserved}", "pado") <= \
                1.05 * jct_of(rows, f"reserved={reserved}",
                              "spark-checkpoint")
    else:
        pado_slope = (jct_of(rows, "reserved=3", "pado")
                      / jct_of(rows, "reserved=7", "pado"))
        assert pado_slope > 1.0  # MR's reduce load makes Pado sensitive
