"""Table 2: collected idle memory over safety margins."""

from repro.bench import render_table, tab2_collected_memory


def test_tab2_collected_memory(benchmark, save_artifact):
    rows = benchmark.pedantic(tab2_collected_memory, rounds=1, iterations=1)
    text = render_table(
        ["margin", "measured", "paper"], rows,
        title="Table 2: collected idle memory (fraction of LC allocation)")
    save_artifact("tab2_collected_memory", text)

    measured = {m: v for m, v, _ in rows}
    # Monotone: looser margins collect less.
    assert measured["baseline"] >= measured["0.1%"] >= measured["1%"] \
        >= measured["5%"]
    # Close to the paper's fractions.
    for margin, value, paper in rows:
        assert abs(value - paper) < 0.05, margin
