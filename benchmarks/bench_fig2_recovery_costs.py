"""Figure 2: recovery cost when every transient container is evicted while
the Reduce operator runs."""

from repro.bench import fig2_recovery_costs, render_table


def test_fig2_recovery_costs(benchmark, save_artifact):
    rows = benchmark.pedantic(fig2_recovery_costs, rounds=1, iterations=1)
    text = render_table(
        ["engine", "relaunched tasks", "checkpointed (MB)", "JCT (m)",
         "no-eviction JCT (m)"], rows,
        title="Figure 2: recovery after evicting all transient containers "
              "during Reduce")
    save_artifact("fig2_recovery_costs", text)

    by_engine = {r[0]: r for r in rows}
    # Pado: no recomputation and no checkpointing needed to recover.
    assert by_engine["pado"][1] == 0
    assert by_engine["pado"][2] == 0
    assert by_engine["pado"][3] == by_engine["pado"][4]  # JCT unchanged
    # Spark: must recompute maps and reduces.
    assert by_engine["spark"][1] > 0
    assert by_engine["spark"][3] > by_engine["spark"][4]
    # Spark-checkpoint: paid checkpoint traffic; recomputes only reduces.
    assert by_engine["spark-checkpoint"][2] > 0
