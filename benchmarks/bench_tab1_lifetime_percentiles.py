"""Table 1: lifetime percentiles per safety margin (minutes)."""

from repro.bench import render_table, tab1_lifetime_percentiles


def test_tab1_lifetime_percentiles(benchmark, save_artifact):
    rows = benchmark.pedantic(tab1_lifetime_percentiles, rounds=1,
                              iterations=1)
    text = render_table(
        ["margin", "percentile", "measured (min)", "paper (min)"], rows,
        title="Table 1: transient container lifetime percentiles")
    save_artifact("tab1_lifetime_percentiles", text)

    measured = {(m, q): v for m, q, v, _ in rows}
    # Tighter margins -> shorter lifetimes at every percentile.
    for q in (50, 90):
        assert measured[("0.1%", q)] < measured[("1%", q)] \
            < measured[("5%", q)]
    # Within ~3.5x of the paper at every anchor.
    for margin, q, value, paper in rows:
        assert paper / 3.5 <= value <= paper * 3.5, (margin, q)
