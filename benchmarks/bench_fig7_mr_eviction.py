"""Figure 7: Map-Reduce job completion times and relaunched-task ratios
under different eviction rates."""

from repro.bench.experiments import completed, jct_of
from repro.bench import fig7_mr, render_table


def test_fig7_mr_eviction(benchmark, save_artifact):
    rows = benchmark.pedantic(fig7_mr, rounds=1, iterations=1)
    text = render_table(
        ["workload", "eviction", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows],
        title="Figure 7: MR under different eviction rates "
              "(40 transient + 5 reserved)")
    save_artifact("fig7_mr_eviction", text)

    # Paper: Spark is fastest without evictions (simple dependencies, all
    # 45 executors share the reduce work), but degrades significantly at
    # the high eviction rate, where Pado wins.
    assert jct_of(rows, "none", "spark") <= jct_of(rows, "none", "pado")
    assert jct_of(rows, "high", "spark") > \
        1.5 * jct_of(rows, "high", "pado")
    # Pado and Spark-checkpoint barely degrade from none to high.
    assert jct_of(rows, "high", "pado") < 2.0 * jct_of(rows, "none", "pado")
    assert completed(rows, "high", "spark-checkpoint")
    # Pado still edges out Spark-checkpoint at high eviction (paper: 1.3x).
    assert jct_of(rows, "high", "pado") <= \
        1.1 * jct_of(rows, "high", "spark-checkpoint")
