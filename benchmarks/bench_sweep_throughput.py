"""Sweep-layer throughput: warm pool vs per-batch cold pool vs serial.

Two benchmark families, both exercising the dispatch layer around the
simulator rather than the simulator itself:

* ``test_batched_sweep`` — six 4-spec batches pushed through one
  ``SweepRunner.run()`` call each, the shape of the multi-tenant dispatch
  loop. ``serial`` runs in-process; ``warm-N`` starts one persistent
  N-worker spawn pool and reuses it for every batch; ``cold-N`` pays a
  fresh pool per batch (the pre-warm-pool execution model, kept as the
  baseline).
* ``test_mtsweep_end_to_end`` — a full 40-job multi-tenant cell at load
  1.0 under high eviction at 8 workers: warm vs cold pools, plus
  ``spec-8`` — the same cell with ``--speculate on`` semantics
  (speculative pre-execution between dispatch instants over an elastic,
  hardware-capped pool; see docs/PERFORMANCE.md). These are the headline
  numbers: the committed baseline shows the warm pool beating the
  per-batch cold pool by >= 3x and speculation beating the warm pool by
  >= 2x on wall-clock, with a bit-identical per-tenant JCT table.

``BENCH_sweep.json`` in this directory is the committed wall-time
baseline; regenerate it after intentional dispatch-layer changes with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_throughput.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_sweep.json

Workers are spawned processes (the runner's default start method), so
every pool startup pays real interpreter boot and import cost — exactly
what the warm pool amortizes. On the 1-core CI container parallel
workers cannot beat serial on compute; these benchmarks measure the
dispatch overhead a distributed run pays per batch, not speedup from
extra cores.
"""

from __future__ import annotations

import functools

import pytest

from repro.bench.multitenant import (jct_table, make_cell_config,
                                     run_multitenant_cell)
from repro.bench.runner import RunSpec, SweepRunner

NUM_BATCHES = 6
BATCH_SIZE = 4

POOLS = (
    ("serial", 0, True),
    ("warm-1", 1, True),
    ("warm-4", 4, True),
    ("warm-8", 8, True),
    ("cold-1", 1, False),
    ("cold-4", 4, False),
    ("cold-8", 8, False),
)


def dispatch_batches() -> list[list[RunSpec]]:
    """Six small distinct-seed batches (no caching, no dedup)."""
    return [[RunSpec(workload="mr", engine="pado", scale=0.02,
                     seed=batch * BATCH_SIZE + slot, eviction="high")
             for slot in range(BATCH_SIZE)]
            for batch in range(NUM_BATCHES)]


@pytest.mark.parametrize("label,workers,warm",
                         POOLS, ids=[p[0] for p in POOLS])
def test_batched_sweep(benchmark, save_artifact, label, workers, warm):
    """Specs/sec for repeated small batches through one runner."""

    def run():
        with SweepRunner(workers=workers, warm=warm) as runner:
            for batch in dispatch_batches():
                runner.run(batch)
            return runner.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.simulated == NUM_BATCHES * BATCH_SIZE
    specs_per_sec = stats.simulated / stats.wall_seconds
    save_artifact(
        f"sweep_throughput_{label}",
        f"batched sweep [{label}]: {stats.simulated} specs in "
        f"{stats.wall_seconds:.2f}s = {specs_per_sec:.1f} specs/sec\n"
        f"  {stats}")


def mtsweep_config():
    return make_cell_config("fair", 1.0, "high", num_jobs=40, seed=11)


@functools.lru_cache(maxsize=1)
def serial_jct_table() -> str:
    """The cell's serial-ground-truth per-tenant JCT table, computed once
    and asserted against every benchmarked variant (bit-identity is part
    of what the committed baseline certifies)."""
    return jct_table(run_multitenant_cell(mtsweep_config(),
                                          runner=SweepRunner(workers=0)))


@pytest.mark.parametrize("label,warm,speculate",
                         [("warm-8", True, False), ("cold-8", False, False),
                          ("spec-8", True, True)],
                         ids=["warm-8", "cold-8", "spec-8"])
def test_mtsweep_end_to_end(benchmark, save_artifact, label, warm,
                            speculate):
    """One full multi-tenant cell: ~40 dispatch batches through the
    runner. Warm amortizes one pool startup over all of them; cold pays
    a startup per batch; spec-8 additionally pre-executes predicted
    dispatches between outer-loop instants (and brings workers up
    elastically, capped at the core count)."""

    def run():
        scaling = "elastic" if speculate else "eager"
        with SweepRunner(workers=8, warm=warm,
                         pool_scaling=scaling) as runner:
            return runner.stats, run_multitenant_cell(
                mtsweep_config(), runner=runner, speculate=speculate)

    stats, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.finish_time is not None for r in result.records)
    assert jct_table(result) == serial_jct_table()
    save_artifact(
        f"sweep_mtsweep_{label}",
        f"mtsweep cell [{label}]: {result.dispatch_batches} dispatch "
        f"batches, {stats.pools_started} pool(s) started\n  {stats}\n"
        + jct_table(result,
                    title=f"mtsweep {label}: fair load=1.0 "
                          f"eviction=high jobs=40"))
