"""Multi-tenant cluster benchmarks: one mtsweep cell per policy.

Times the full two-level simulation — diurnal arrivals, inter-job
scheduling, correlated eviction waves, and one real inner engine run per
dispatched job — for each of the three policies at the default operating
point. ``BENCH_multitenant.json`` in this directory is the committed
JCT-distribution baseline for the whole load x policy x eviction sweep
(18 cells, 1080 arriving jobs); regenerate it after intentional changes
with::

    PYTHONPATH=src python -m repro mtsweep --policy all \
        --load 0.5,0.8,1.1 --eviction medium,high --jobs 60 --workers 4 \
        --out benchmarks/BENCH_multitenant.json

and walk through the numbers in docs/MULTITENANCY.md. The sweep is
deterministic in its seed, so the committed file only changes when the
scheduling, arrival, or engine code changes meaningfully.
"""

from __future__ import annotations

import pytest

from repro.bench.multitenant import (jct_table, make_cell_config,
                                     run_multitenant_cell)
from repro.bench.runner import SweepRunner

POLICIES = ("fifo", "fair", "quota")


@pytest.mark.parametrize("policy", POLICIES)
def test_mtsweep_cell(benchmark, policy, save_artifact):
    """One 30-job cell at load 0.8 under high eviction: the unit of work
    the mtsweep CLI repeats per cell."""

    def run():
        config = make_cell_config(policy, 0.8, "high", num_jobs=30,
                                  seed=11)
        return config, run_multitenant_cell(config,
                                            runner=SweepRunner())

    config, result = benchmark(run)
    assert all(r.finish_time is not None for r in result.records)
    save_artifact(f"mtsweep_{policy}",
                  jct_table(result,
                            title=f"mtsweep cell: policy={policy} "
                                  f"load=0.8 eviction=high jobs=30"))
