#!/usr/bin/env python
"""Reproduce Figure 3: compile the paper's three workloads with the Pado
compiler and print operator placements and Pado Stages.

    python examples/compile_workloads.py
"""

from repro import compile_program
from repro.workloads import (als_synthetic_program, mlr_synthetic_program,
                             mr_synthetic_program)


def show(title: str, program) -> None:
    job = compile_program(program.dag)
    print(f"=== {title} ===")
    placements = job.placement_summary()
    reserved = sorted(n for n, p in placements.items() if p == "reserved")
    transient = sorted(n for n, p in placements.items() if p == "transient")
    print(f"reserved operators:  {', '.join(reserved)}")
    print(f"transient operators: {', '.join(transient)}")
    print("stages:")
    print("  " + job.describe().replace("\n", "\n  "))
    print()


def main() -> None:
    show("Figure 3(a): Map-Reduce", mr_synthetic_program(scale=0.05))
    show("Figure 3(b): Multinomial Logistic Regression (1 iteration)",
         mlr_synthetic_program(iterations=1, scale=0.05))
    show("Figure 3(c): Alternating Least Squares (1 iteration)",
         als_synthetic_program(iterations=1, scale=0.1))


if __name__ == "__main__":
    main()
