#!/usr/bin/env python
"""Compare Spark, Spark-checkpoint, and Pado on one of the paper's
workloads across eviction rates — a miniature of Figures 5-7.

    python examples/engine_comparison.py [als|mlr|mr] [scale]
"""

import sys

from repro.bench import eviction_rate_sweep, render_table, speedup


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mlr"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else None
    print(f"Running {workload.upper()} on 40 transient + 5 reserved "
          f"containers...\n")
    rows = eviction_rate_sweep(workload, scale=scale)
    print(render_table(
        ["workload", "eviction", "engine", "JCT (m)", "completed",
         "relaunched", "evictions"], [r.as_tuple() for r in rows]))

    def jct(rate, engine):
        return next(r.jct_minutes for r in rows
                    if r.eviction == rate and r.engine == engine)

    print()
    print(f"At the high eviction rate, Pado is "
          f"{speedup(jct('high', 'spark'), jct('high', 'pado'))} faster "
          f"than Spark and "
          f"{speedup(jct('high', 'spark-checkpoint'), jct('high', 'pado'))} "
          f"faster than checkpoint-enabled Spark.")


if __name__ == "__main__":
    main()
