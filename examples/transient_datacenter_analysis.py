#!/usr/bin/env python
"""Reproduce the paper's §2.1 datacenter analysis end to end:

1. synthesize a Google-style trace of latency-critical job memory usage
   (5-minute samples);
2. refine it to 1-minute samples with a B-spline fit;
3. derive transient-container lifetimes under Borg-style safety margins;
4. print Figure 1 (lifetime CDFs), Table 1 (percentiles) and Table 2
   (collected idle memory), next to the paper's numbers.

    python examples/transient_datacenter_analysis.py
"""

from repro.bench import (fig1_lifetime_cdfs, render_cdf_series, render_table,
                         tab1_lifetime_percentiles, tab2_collected_memory)


def main() -> None:
    print(render_cdf_series(
        fig1_lifetime_cdfs(),
        title="Figure 1: CDFs of transient container lifetimes"))
    print()
    print(render_table(
        ["margin", "percentile", "measured (min)", "paper (min)"],
        tab1_lifetime_percentiles(),
        title="Table 1: lifetime percentiles over safety margins"))
    print()
    print(render_table(
        ["margin", "measured", "paper"],
        tab2_collected_memory(),
        title="Table 2: collected idle memory (fraction of LC allocation)"))


if __name__ == "__main__":
    main()
