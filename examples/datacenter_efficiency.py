#!/usr/bin/env python
"""Quantify the paper's motivating claim: harvested transient resources
only increase datacenter throughput if the engine doesn't waste them.

Runs MLR on all three engines under the paper's high eviction rate and
reports resource-time accounting: how much work was wasted on relaunches
and how much useful work each engine extracted per reserved core-second.

    python examples/datacenter_efficiency.py
"""

from repro import (ClusterConfig, EvictionRate, PadoEngine,
                   SparkCheckpointEngine, SparkEngine)
from repro.bench import render_table
from repro.metrics import compare_efficiency
from repro.workloads import mlr_synthetic_program


def main() -> None:
    cluster = ClusterConfig(eviction=EvictionRate.HIGH)
    results = []
    for engine in (SparkEngine(), SparkCheckpointEngine(), PadoEngine()):
        program = mlr_synthetic_program(scale=0.15, iterations=3)
        results.append(engine.run(program, cluster, seed=11,
                                  time_limit=150 * 60))
    reports = compare_efficiency(results, cluster)
    print(render_table(
        ["engine", "JCT (m)", "wasted work", "harvested capacity",
         "useful tasks / reserved core-hour"],
        [r.as_row() for r in reports],
        title="MLR on 40 transient + 5 reserved containers, high eviction "
              "rate"))
    best = reports[0]
    print(f"\n{best.engine} extracts the most batch work per reserved "
          f"core-hour — exactly the datacenter-utilization argument of §1.")


if __name__ == "__main__":
    main()
