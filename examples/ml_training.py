#!/usr/bin/env python
"""Train real ML models (MLR and ALS) on Pado under constant evictions.

Both workloads execute their actual numerics inside the simulation — the
gradients, factor solves and aggregations run for real — while transient
containers are evicted every few simulated seconds on average. The final
models must match the failure-free local runner bit-for-bit (up to float
summation order), demonstrating that the compiler placement + push-based
commit protocol preserve exactly-once semantics for iterative ML (§3.2.5).

    python examples/ml_training.py
"""

import numpy as np

from repro import ClusterConfig, LocalRunner, PadoEngine
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import als_real_program, mlr_real_program


def run_mlr() -> None:
    iterations = 4
    program = mlr_real_program(iterations=iterations)
    sink = f"model_{iterations}"
    expected = LocalRunner().run(program.dag).collect(sink)[0]

    cluster = ClusterConfig(num_reserved=2, num_transient=5,
                            eviction=ExponentialLifetimeModel(4.0))
    result = PadoEngine().run(mlr_real_program(iterations=iterations),
                              cluster, seed=3, time_limit=3600)
    model = result.collected(sink)[0]
    print("== Multinomial Logistic Regression ==")
    print(f"evictions survived: {result.evictions}, "
          f"tasks relaunched: {result.relaunched_tasks}")
    print(f"model matches failure-free training: "
          f"{np.allclose(model, expected, atol=1e-8)}")
    print(f"model norm: {np.linalg.norm(model):.4f}\n")


def run_als() -> None:
    program = als_real_program(iterations=2)
    sink = "item_factor_2"
    expected = dict(LocalRunner().run(program.dag).collect(sink))

    cluster = ClusterConfig(num_reserved=2, num_transient=5,
                            eviction=ExponentialLifetimeModel(4.0))
    result = PadoEngine().run(als_real_program(iterations=2), cluster,
                              seed=5, time_limit=3600)
    factors = dict(result.collected(sink))
    ok = set(factors) == set(expected) and all(
        np.allclose(factors[item], expected[item], atol=1e-8)
        for item in expected)
    print("== Alternating Least Squares ==")
    print(f"evictions survived: {result.evictions}, "
          f"tasks relaunched: {result.relaunched_tasks}")
    print(f"item factors match failure-free training: {ok}")
    print(f"learned factors for {len(factors)} items, rank "
          f"{len(next(iter(factors.values())))}")


def main() -> None:
    run_mlr()
    run_als()


if __name__ == "__main__":
    main()
