#!/usr/bin/env python
"""Quickstart: run a word-count job on Pado under heavy evictions.

Builds a Beam-like pipeline, runs it on the simulated transient-resource
cluster with containers whose mean lifetime is only 5 simulated seconds,
and checks the result against the local reference runner — demonstrating
Pado's exactly-once eviction tolerance (§3.2.5).

    python examples/quickstart.py
"""

from repro import ClusterConfig, LocalRunner, PadoEngine, Pipeline
from repro.dataflow import SumCombiner
from repro.engines.base import Program
from repro.trace.models import ExponentialLifetimeModel

TEXT = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "pado harnesses transient resources in datacenters",
    "evictions destroy transient state but not the results",
    "the fox and the dog become friends",
]


def build_program() -> Program:
    pipeline = Pipeline("wordcount")
    lines = pipeline.read("read", partitions=[[line] for line in TEXT])
    counts = (lines.flat_map("split", str.split)
                   .map("pair", lambda word: (word, 1))
                   .reduce_by_key("count", SumCombiner(), parallelism=2))
    return Program(pipeline.to_dag(), name="wordcount")


def main() -> None:
    expected = sorted(LocalRunner().run(build_program().dag)
                      .collect("count"))

    engine = PadoEngine()
    cluster = ClusterConfig(
        num_reserved=2, num_transient=4,
        eviction=ExponentialLifetimeModel(5.0))  # brutal 5-second lifetimes
    result = engine.run(build_program(), cluster, seed=7, time_limit=3600)

    print(f"completed:        {result.completed}")
    print(f"job completion:   {result.jct_seconds:.2f} simulated seconds")
    print(f"evictions:        {result.evictions}")
    print(f"tasks relaunched: {result.relaunched_tasks} "
          f"(of {result.original_tasks} original)")
    got = sorted(result.collected("count"))
    print(f"output matches local runner: {got == expected}")
    print()
    for word, count in got:
        print(f"  {word:12s} {count}")
    assert got == expected


if __name__ == "__main__":
    main()
