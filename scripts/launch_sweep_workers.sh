#!/usr/bin/env sh
# Fan sweep-workers out over SSH against a shared job directory.
#
# The jobfile backend (docs/PERFORMANCE.md, "Sweep throughput") needs
# nothing but processes that can see the same directory: each worker
# claims chunks from JOB_DIR/queue by atomic rename and commits results
# to the shared content-hash cache, so this launcher is deliberately
# dumb — one ssh per host, no daemon, no coordination. The submitting
# runner (`python -m repro mtsweep --job-dir JOB_DIR ...`) drains the
# queue itself, so a host that never comes up costs nothing but speed.
#
# Usage:
#   scripts/launch_sweep_workers.sh JOB_DIR HOST [HOST...]
#
#   JOB_DIR   job directory as seen FROM THE REMOTE HOSTS (NFS or
#             equivalent shared mount, same path everywhere)
#   HOST      ssh destinations (user@host works); pass the same host
#             twice to start two workers on it
#
# Environment:
#   REPRO_REMOTE_ROOT   repo checkout on the remote hosts
#                       (default: same absolute path as this checkout)
#   REPRO_PYTHON        python interpreter on the remote hosts
#                       (default: python3)
#   REPRO_WORKER_ARGS   extra sweep-worker flags, e.g. "--once" or
#                       "--claim-timeout 300"
#
# Workers poll forever by default; stop them with ctrl-C here (ssh -tt
# ties their lifetime to this script) or kill the remote processes.
# Smoke-test the whole path on one machine with a --once worker, which
# drains the queue and exits:
#
#   scripts/launch_sweep_workers.sh /shared/jobs localhost &
#   REPRO_WORKER_ARGS=--once scripts/launch_sweep_workers.sh \
#       /shared/jobs localhost     # one-shot drain, exits when empty

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 JOB_DIR HOST [HOST...]" >&2
    exit 64
fi

job_dir=$1
shift

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
remote_root=${REPRO_REMOTE_ROOT:-$repo_root}
python=${REPRO_PYTHON:-python3}
worker_args=${REPRO_WORKER_ARGS:-}

pids=""
for host in "$@"; do
    echo "[launch_sweep_workers] $host: $python -m repro sweep-worker" \
         "$job_dir $worker_args" >&2
    # -tt: the remote worker dies with this script instead of lingering.
    ssh -tt -o BatchMode=yes "$host" \
        "cd '$remote_root' && PYTHONPATH=src $python -m repro" \
        "sweep-worker '$job_dir' $worker_args" &
    pids="$pids $!"
done

status=0
for pid in $pids; do
    wait "$pid" || status=$?
done
exit "$status"
