#!/usr/bin/env python
"""Regenerate the golden values in ``tests/test_engine_parity.py``.

The parity test pins every ``JobResult`` field of a fixed grid of
(workload, engine, seed) runs so that refactors of the execution substrate
(`repro.core.exec`) cannot silently perturb simulation results. Run this
script ONLY when a change is *supposed* to alter results, review the diff,
and paste the printed dict over ``GOLDEN`` in the test file.

Usage::

    PYTHONPATH=src python scripts/gen_parity_goldens.py
"""

from __future__ import annotations

import pprint
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ClusterConfig, PadoEngine, SparkCheckpointEngine, SparkEngine
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import mlr_synthetic_program, mr_synthetic_program

ENGINES = {
    "pado": PadoEngine,
    "spark": SparkEngine,
    "spark_checkpoint": SparkCheckpointEngine,
}

WORKLOADS = {
    "mlr": lambda: mlr_synthetic_program(iterations=2, scale=0.05),
    "mr": lambda: mr_synthetic_program(scale=0.05),
}

SEEDS = (0, 1, 2)

CLUSTER = dict(num_reserved=2, num_transient=5,
               eviction=ExponentialLifetimeModel(600.0))

TIME_LIMIT = 48 * 3600.0

#: JobResult fields pinned by the parity test.
FIELDS = ("completed", "jct_seconds", "original_tasks", "launched_tasks",
          "evictions", "bytes_input_read", "bytes_shuffled", "bytes_pushed",
          "bytes_checkpointed")


def run_grid() -> dict:
    golden = {}
    for wname, make in sorted(WORKLOADS.items()):
        for ename, engine_cls in sorted(ENGINES.items()):
            for seed in SEEDS:
                result = engine_cls().run(make(), ClusterConfig(**CLUSTER),
                                          seed=seed, time_limit=TIME_LIMIT)
                golden[(wname, ename, seed)] = {
                    field: getattr(result, field) for field in FIELDS}
    return golden


if __name__ == "__main__":
    pprint.pprint(run_grid(), sort_dicts=True)
