#!/usr/bin/env python
"""Documentation lint, run as part of the tier-1 test suite.

Checks two things, with zero dependencies beyond the standard library:

* every package under ``src/repro/`` (every directory with an
  ``__init__.py``) is mentioned by its dotted name in
  ``docs/ARCHITECTURE.md`` — adding a package without documenting it
  fails the build;
* every fenced ``python`` code block in ``README.md`` and ``docs/*.md``
  is syntactically valid (``compile()`` succeeds), so documented
  examples cannot rot into syntax errors silently.

Exit status 0 when clean; prints each problem and exits 1 otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def repro_packages() -> list[str]:
    """Dotted names of every package under src/repro, sorted."""
    names = []
    for init in sorted(SRC.rglob("__init__.py")):
        relative = init.parent.relative_to(SRC.parent)
        names.append(".".join(relative.parts))
    return names


def check_architecture_mentions() -> list[str]:
    problems = []
    if not ARCHITECTURE.exists():
        return [f"{ARCHITECTURE.relative_to(REPO)} does not exist"]
    text = ARCHITECTURE.read_text()
    for package in repro_packages():
        if package not in text:
            problems.append(
                f"docs/ARCHITECTURE.md never mentions package `{package}`")
    return problems


def check_code_blocks() -> list[str]:
    problems = []
    documents = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    for document in documents:
        if not document.exists():
            continue
        text = document.read_text()
        for i, match in enumerate(FENCE.finditer(text), start=1):
            snippet = match.group(1)
            line = text[:match.start()].count("\n") + 2
            try:
                compile(snippet, f"{document.name}:block{i}", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{document.relative_to(REPO)} python block {i} "
                    f"(line {line}) does not parse: {exc}")
    return problems


def main() -> int:
    problems = check_architecture_mentions() + check_code_blocks()
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        return 1
    packages = repro_packages()
    print(f"check_docs: OK ({len(packages)} packages documented, "
          f"code blocks parse)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
