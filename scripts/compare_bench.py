#!/usr/bin/env python
"""Compare a fresh pytest-benchmark run against a committed baseline.

CI runs the benchmark suites with ``--benchmark-json=fresh.json`` and then::

    python scripts/compare_bench.py \
        --baseline benchmarks/BENCH_engine.json --fresh fresh.json

Every cell present in both files is compared by mean; any cell whose fresh
mean exceeds the baseline mean by more than ``--threshold`` (default 25%)
is a regression and the script exits 1, printing the offending cells. A
cell that exists in the baseline but not in the fresh run also fails (a
benchmark silently disappearing is how regressions hide); cells only in
the fresh run are reported but pass — commit a regenerated baseline to
start tracking them.

Two baseline formats are understood: pytest-benchmark JSON (cells are
benchmark names, means are wall-time) and sweep rows as written by
``python -m repro psweep --out`` — either a bare row list or the
``{"rows": [...], "runner": {...}}`` wrapper that carries runner timing
(cells are workload/regime/variant rows,
"means" are simulated JCT seconds — the sweep is deterministic, so a
fresh run diverging beyond the threshold means the engine's *behavior*
changed, not the machine's speed)::

    python scripts/compare_bench.py \
        --baseline benchmarks/BENCH_prediction.json --fresh fresh.json

Zero dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_means(path: pathlib.Path) -> dict[str, float]:
    """``{cell name: mean seconds}`` from a benchmark JSON file."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "rows" in data:
        # ``python -m repro psweep --out`` wraps the row list with runner
        # timing; the timing is machine-dependent and not compared.
        data = data["rows"]
    if isinstance(data, list):
        return {"{workload}/{regime}/{variant}".format(**row):
                row["jct_minutes"] * 60.0 for row in data}
    return {bench["name"]: bench["stats"]["mean"]
            for bench in data["benchmarks"]}


def compare(baseline: dict[str, float], fresh: dict[str, float],
            threshold: float) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines, failures = [], []
    width = max((len(name) for name in baseline | fresh), default=4)
    header = (f"{'cell':{width}s} {'baseline':>10s} {'fresh':>10s} "
              f"{'delta':>8s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(baseline):
        base_mean = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing "
                            f"from the fresh run")
            lines.append(f"{name:{width}s} {base_mean * 1e3:9.1f}ms "
                         f"{'MISSING':>10s} {'':>8s}")
            continue
        fresh_mean = fresh[name]
        delta = (fresh_mean - base_mean) / base_mean
        flag = ""
        if delta > threshold:
            failures.append(f"{name}: mean regressed "
                            f"{base_mean * 1e3:.1f}ms -> "
                            f"{fresh_mean * 1e3:.1f}ms "
                            f"(+{delta:.0%}, threshold +{threshold:.0%})")
            flag = "  << REGRESSION"
        lines.append(f"{name:{width}s} {base_mean * 1e3:9.1f}ms "
                     f"{fresh_mean * 1e3:9.1f}ms {delta:+8.1%}{flag}")
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"{name:{width}s} {'(new)':>10s} "
                     f"{fresh[name] * 1e3:9.1f}ms {'':>8s}")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="committed baseline JSON "
                             "(benchmarks/BENCH_*.json)")
    parser.add_argument("--fresh", required=True, type=pathlib.Path,
                        help="fresh run JSON (pytest --benchmark-json=...)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated relative mean regression "
                             "per cell (default: 0.25)")
    args = parser.parse_args(argv)

    lines, failures = compare(load_means(args.baseline),
                              load_means(args.fresh), args.threshold)
    print(f"[compare_bench] {args.fresh} vs {args.baseline} "
          f"(threshold +{args.threshold:.0%})")
    print("\n".join(lines))
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall cells within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
